package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Satellite: every /metrics family obeys the Prometheus naming conventions —
// counters end in _total, durations are base-unit seconds (no _ms_ names),
// sizes are bytes, gauges never borrow the _total suffix — enforced on a
// live scrape so a new metric cannot regress the exposition.
func TestMetricsLintConventions(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, QuotaRPS: 1000, Spans: true})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	// Traffic first, so per-client and latency families materialize.
	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`)
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	samples := parseProm(t, body)
	if len(samples) == 0 {
		t.Fatal("empty exposition")
	}
	for name, sm := range samples {
		fam := sm.family
		if !strings.HasPrefix(fam, "getm_serve_") {
			t.Errorf("%s: family %s outside the getm_serve_ namespace", name, fam)
		}
		if strings.Contains(fam, "_ms_") || strings.HasSuffix(fam, "_ms") ||
			strings.Contains(fam, "_us_") || strings.HasSuffix(fam, "_us") {
			t.Errorf("%s: non-base-unit duration name (want _seconds)", fam)
		}
		switch sm.typ {
		case "counter":
			if !strings.HasSuffix(fam, "_total") {
				t.Errorf("counter %s does not end in _total", fam)
			}
		case "gauge":
			if strings.HasSuffix(fam, "_total") {
				t.Errorf("gauge %s must not end in _total", fam)
			}
		case "summary":
			if !strings.HasSuffix(fam, "_seconds") {
				t.Errorf("summary %s is a latency family and must end in _seconds", fam)
			}
		}
	}
	// The stage summary carries all three stages.
	for _, stage := range []string{"queue", "sim", "persist"} {
		key := fmt.Sprintf(`getm_serve_stage_latency_seconds{stage=%q,quantile="0.99"}`, stage)
		if _, ok := samples[key]; !ok {
			t.Errorf("exposition missing %s", key)
		}
	}
}

// Satellite: /metrics declares the text exposition content type, version
// included, pinned here next to the strict parser.
func TestMetricsContentType(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Drain(time.Second)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := resp.Header.Get("Content-Type"); got != want {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, want)
	}
}

// Zero-alloc gates, PR 3 TestEmitDisabledZeroAlloc style: with spans
// disabled the emit guard is one pointer compare, and the always-on
// stage/client accounting must not allocate per request either. The enabled
// emit path is also gated — records are written in place into the
// preallocated ring, ids interned.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2}) // spans off
	defer s.Drain(time.Second)
	if s.spans != nil {
		t.Fatal("spans unexpectedly enabled")
	}
	if n := testing.AllocsPerRun(1000, func() {
		s.span(stageReceive, "client-a", "run-1", 1, 2)
	}); n != 0 {
		t.Fatalf("disabled span emit allocates %v bytes/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		s.met.observeStages(time.Millisecond, 2*time.Millisecond, time.Microsecond)
	}); n != 0 {
		t.Fatalf("observeStages allocates %v/op, want 0", n)
	}
	s.met.clientRequest("client-a", 1) // materialize the row
	if n := testing.AllocsPerRun(1000, func() {
		s.met.clientRequest("client-a", 1)
		s.met.clientShed("client-a", 1)
	}); n != 0 {
		t.Fatalf("client accounting allocates %v/op for an existing client, want 0", n)
	}
}

func TestSpanEnabledEmitZeroAlloc(t *testing.T) {
	rec := newSpanRecorder(1 << 10)
	rec.emit(stageReceive, "client-a", "run-1", 0, 0) // intern both ids
	if n := testing.AllocsPerRun(1000, func() {
		rec.emit(stageSimFinish, "client-a", "run-1", 123, 456)
	}); n != 0 {
		t.Fatalf("enabled span emit allocates %v/op for interned ids, want 0", n)
	}
}

// Satellite: the span recorder under concurrent serve traffic — N clients
// hammering the batch endpoint under -race — loses no lifecycle records and
// duplicates none: sequence numbers are dense and unique, and the per-stage
// record counts match the known request counts exactly.
func TestSpanRecorderConcurrentNoLoss(t *testing.T) {
	const (
		nClients = 8
		nBatches = 5
		perBatch = 8
	)
	s := New(Config{Workers: 4, QueueDepth: 1024, Spans: true, SpanRing: 1 << 16})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for b := 0; b < nBatches; b++ {
				var specs []string
				for i := 0; i < perBatch; i++ {
					// Distinct seeds: every item is a fresh admission.
					specs = append(specs, fmt.Sprintf(
						`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`,
						c*100000+b*1000+i+1))
				}
				resp := postBatch(t, ts.URL, "["+strings.Join(specs, ",")+"]",
					map[string]string{"X-Client-ID": fmt.Sprintf("client-%d", c)})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch: %d", resp.StatusCode)
				}
				if resp.Header.Get("X-Getm-Shed") != "0" {
					t.Errorf("unexpected shedding: %s", resp.Header.Get("X-Getm-Shed"))
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()

	recs, _, _ := s.spans.snapshot()
	if d := s.spans.dropped(); d != 0 {
		t.Fatalf("%d records dropped despite oversized ring", d)
	}
	if uint64(len(recs)) != s.spans.total() {
		t.Fatalf("snapshot %d records, recorder total %d", len(recs), s.spans.total())
	}
	seen := make(map[uint64]bool, len(recs))
	var maxSeq uint64
	stageCount := make(map[spanStage]int)
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
		stageCount[r.Stage]++
	}
	if want := uint64(len(recs) - 1); maxSeq != want {
		t.Fatalf("seq not dense: max %d over %d records", maxSeq, len(recs))
	}

	const totalJobs = nClients * nBatches * perBatch
	if got := stageCount[stageReceive]; got != nClients*nBatches {
		t.Errorf("receive records = %d, want %d", got, nClients*nBatches)
	}
	if got := stageCount[stageRespond]; got != nClients*nBatches {
		t.Errorf("respond records = %d, want %d", got, nClients*nBatches)
	}
	for _, st := range []spanStage{stageMiss, stageEnqueue, stageDequeue, stageSimStart, stageSimFinish} {
		if got := stageCount[st]; got != totalJobs {
			t.Errorf("%s records = %d, want %d", st, got, totalJobs)
		}
	}
	if got := int(execs.Load()); got != totalJobs {
		t.Fatalf("stub executed %d jobs, want %d", got, totalJobs)
	}
}

// The intern tables stay bounded: client-id cardinality beyond the cap
// collapses onto index 0 instead of growing server memory.
func TestSpanInternBounded(t *testing.T) {
	rec := newSpanRecorder(1 << 8)
	for i := 0; i < 3*spanInternCap; i++ {
		rec.emit(stageReceive, fmt.Sprintf("client-%d", i), "", 0, 0)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.clients.rev) > spanInternCap {
		t.Fatalf("client intern table grew to %d, cap %d", len(rec.clients.rev), spanInternCap)
	}
}

// Satellite: the timings header round-trips — a sync submit with spans
// enabled carries X-Getm-Timings, its values parse, and they agree with
// GET /v1/runs/{id}/timings.
func TestTimingsHeaderRoundTrip(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Spans: true})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	hdr := resp.Header.Get("X-Getm-Timings")
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	q, sim, pers, err := parseTimings(hdr)
	if err != nil {
		t.Fatalf("X-Getm-Timings %q: %v", hdr, err)
	}
	if q < 0 || sim < 0 || pers < 0 {
		t.Fatalf("negative stage timing in %q", hdr)
	}

	code, body := getBody(t, ts.URL+"/v1/runs/"+out.ID+"/timings")
	if code != http.StatusOK {
		t.Fatalf("timings endpoint = %d: %s", code, body)
	}
	var tm Timings
	if err := json.Unmarshal([]byte(body), &tm); err != nil {
		t.Fatal(err)
	}
	if tm.ID != out.ID || tm.Status != "done" {
		t.Fatalf("timings = %+v, want done for %s", tm, out.ID)
	}
	if tm.QueueUS != q || tm.SimUS != sim || tm.PersistUS != pers {
		t.Fatalf("endpoint (%d,%d,%d) disagrees with header (%d,%d,%d)",
			tm.QueueUS, tm.SimUS, tm.PersistUS, q, sim, pers)
	}

	// Unknown ids 404.
	code, _ = getBody(t, ts.URL+"/v1/runs/nope/timings")
	if code != http.StatusNotFound {
		t.Fatalf("unknown id timings = %d, want 404", code)
	}
}

// Without spans the response must not carry the header (the hot path stays
// byte-identical to the pre-observability server).
func TestTimingsHeaderAbsentWhenDisabled(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`)
	defer resp.Body.Close()
	if h := resp.Header.Get("X-Getm-Timings"); h != "" {
		t.Fatalf("X-Getm-Timings %q present with spans disabled", h)
	}
	code, _ := getBody(t, ts.URL+"/v1/spans")
	if code != http.StatusNotFound {
		t.Fatalf("/v1/spans = %d with spans disabled, want 404", code)
	}
}

// parseTimings parses "queue=<µs>;sim=<µs>;persist=<µs>".
func parseTimings(h string) (queue, sim, persist int64, err error) {
	for _, part := range strings.Split(h, ";") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("malformed part %q", part)
		}
		var n int64
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil {
			return 0, 0, 0, err
		}
		switch k {
		case "queue":
			queue = n
		case "sim":
			sim = n
		case "persist":
			persist = n
		default:
			return 0, 0, 0, fmt.Errorf("unknown stage %q", k)
		}
	}
	return queue, sim, persist, nil
}

// The span export formats render: perfetto parses as JSON with serve
// lifecycle events, csv has the header row, text is line-per-record.
func TestSpanExportFormats(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, Spans: true})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`)
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/v1/spans?format=perfetto")
	if code != http.StatusOK {
		t.Fatalf("perfetto export = %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("perfetto export not JSON: %v", err)
	}
	stages := make(map[string]bool)
	for _, e := range doc.TraceEvents {
		if e.Pid == servePid {
			stages[e.Name] = true
		}
	}
	for _, want := range []string{"receive", "miss", "dequeue", "sim_finish", "respond"} {
		if !stages[want] {
			t.Errorf("perfetto export missing serve stage %q (have %v)", want, stages)
		}
	}

	code, body = getBody(t, ts.URL+"/v1/spans?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(body, "us,seq,stage,client,run,a,b\n") {
		t.Fatalf("csv export = %d %q", code, body[:min(len(body), 80)])
	}
	code, body = getBody(t, ts.URL+"/v1/spans?format=text")
	if code != http.StatusOK || !strings.Contains(body, "sim_finish") {
		t.Fatalf("text export = %d %q", code, body[:min(len(body), 80)])
	}
	code, _ = getBody(t, ts.URL+"/v1/spans?format=nope")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", code)
	}
}

// Acceptance: with spans enabled and a real simulation behind the serve
// path, one Perfetto export holds both the serve lifecycle spans and the
// sim-level engine events for the same run id — the request and the engine
// work it triggered on a single timeline.
func TestSpansPerfettoJoinsServeAndSim(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	s := New(Config{Workers: 1, QueueDepth: 4, Spans: true})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(5 * time.Second)

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.02}`)
	out := decodeRun(t, resp)
	if out.Status != "done" {
		t.Fatalf("run = %+v", out)
	}

	code, body := getBody(t, ts.URL+"/v1/spans?format=perfetto")
	if code != http.StatusOK {
		t.Fatalf("export = %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	serveSpanForRun, simEvents := false, false
	for _, e := range doc.TraceEvents {
		if e.Pid == servePid && e.Name == "sim_finish" {
			if run, _ := e.Args["run"].(string); run == out.ID {
				serveSpanForRun = true
			}
		}
		if e.Pid >= simTracePidBase && e.Ph != "M" {
			simEvents = true
		}
	}
	if !serveSpanForRun {
		t.Errorf("no serve lifecycle span tagged with run id %s", out.ID)
	}
	if !simEvents {
		t.Errorf("no sim-level events in the joint export")
	}
	// The same run id names a sim process in the document.
	if !strings.Contains(body, `"run `+out.ID[:12]) {
		t.Errorf("sim recorder process for run %s missing", out.ID)
	}
}

// pprof mounts only behind the flag.
func TestPprofGated(t *testing.T) {
	off := New(Config{Workers: 1, QueueDepth: 2})
	defer off.Drain(time.Second)
	tsOff := httptest.NewServer(off)
	defer tsOff.Close()
	if code, _ := getBody(t, tsOff.URL+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", code)
	}

	on := New(Config{Workers: 1, QueueDepth: 2, Pprof: true})
	defer on.Drain(time.Second)
	tsOn := httptest.NewServer(on)
	defer tsOn.Close()
	if code, _ := getBody(t, tsOn.URL+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline = %d with -pprof, want 200", code)
	}
}

// Baseline mode keeps the PR 5 surface: spans stay off even when requested.
func TestBaselineIgnoresSpans(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2, Baseline: true, Spans: true})
	defer s.Drain(time.Second)
	if s.spans != nil || s.traces != nil {
		t.Fatal("baseline server built span machinery")
	}
}
