package serve

import (
	"fmt"
	"strconv"
	"strings"

	"getm/internal/gpu"
	"getm/internal/harness"
	"getm/internal/policy"
	"getm/internal/workloads"
)

// RunSpec is the body of POST /v1/runs: one simulation request. The zero
// values of Scale and Seed select the library's documented sentinels (1.0
// and 42), so the minimal request is just {"protocol": ..., "benchmark": ...}.
type RunSpec struct {
	// Protocol is one of getm, warptm, warptm-el, eapg, fglock. Ignored
	// when Policy is set.
	Protocol string `json:"protocol"`
	// Policy selects a protocol-matrix point directly: a preset name
	// ("getm", "warptm", "warptm-el", "eapg") or an axis list such as
	// "vm=eager,cd=eager,res=timestamp,arb=local". It takes precedence over
	// Protocol; a preset point is indistinguishable from naming the protocol
	// (same run id, same store record). Invalid combinations are refused
	// with 400.
	Policy string `json:"policy,omitempty"`
	// Benchmark is one of the paper's workloads (see workloads.Names).
	Benchmark string `json:"benchmark"`
	// Scale shrinks the workload (0 = 1.0, the full reproduction scale).
	// Requests above the server's -max-scale are refused with 400.
	Scale float64 `json:"scale,omitempty"`
	// Seed drives workload generation (0 = 42).
	Seed uint64 `json:"seed,omitempty"`
	// Conc caps concurrent transactional warps per core (0 = unlimited).
	Conc int `json:"conc,omitempty"`
	// Cores selects the machine: 0 or 15 for the paper's GTX480-like
	// config, 56 for the scaled one.
	Cores int `json:"cores,omitempty"`
	// CycleBudget bounds the simulation's cost: the run stops after this
	// many simulated cycles and returns partial metrics tagged truncated
	// (0 = no bound). A stored complete result still satisfies a budgeted
	// request — the budget bounds simulation cost, not disk reads.
	CycleBudget uint64 `json:"cycle_budget,omitempty"`
	// TimeoutMS overrides the per-request wall-clock deadline, capped at
	// the server's -request-timeout (0 = the server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes POST return 202 with the run id immediately; poll
	// GET /v1/runs/{id} for the durable job status and result.
	Async bool `json:"async,omitempty"`

	// pol holds the parsed non-preset matrix point after validate. Preset
	// policies collapse onto Protocol instead, so the invariant after a
	// successful validate is: pol zero and Protocol a known name, or pol a
	// valid non-preset point and Protocol empty.
	pol policy.Policy
}

var protocols = map[string]bool{
	string(gpu.ProtoGETM):     true,
	string(gpu.ProtoWarpTM):   true,
	string(gpu.ProtoWarpTMEL): true,
	string(gpu.ProtoEAPG):     true,
	string(gpu.ProtoFGLock):   true,
}

// normalize applies the documented zero-value sentinels in place.
func (sp *RunSpec) normalize() {
	if sp.Scale == 0 {
		sp.Scale = 1.0
	}
	if sp.Seed == 0 {
		sp.Seed = 42
	}
}

// validate checks a normalized spec against static limits; maxScale is the
// server's admission ceiling. A spec carrying a Policy is parsed here:
// presets collapse onto the equivalent Protocol name (so policy and
// protocol spellings of the same point share one run id), non-preset points
// land in sp.pol, and invalid ones fail — the caller maps the error to 400.
func (sp *RunSpec) validate(maxScale float64) error {
	if sp.Policy != "" {
		p, err := policy.Parse(sp.Policy)
		if err != nil {
			return err
		}
		if name, ok := policy.PresetName(p); ok {
			sp.Protocol = name
			sp.pol = policy.Policy{}
		} else {
			sp.Protocol = ""
			sp.pol = p
		}
	}
	if sp.pol.IsZero() && !protocols[sp.Protocol] {
		return fmt.Errorf("unknown protocol %q (want getm, warptm, warptm-el, eapg, fglock)", sp.Protocol)
	}
	names := workloads.Names()
	ok := false
	for _, n := range names {
		if n == sp.Benchmark {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("unknown benchmark %q (want one of %v)", sp.Benchmark, names)
	}
	if sp.Scale <= 0 || sp.Scale > maxScale {
		return fmt.Errorf("scale %g out of range (0, %g]", sp.Scale, maxScale)
	}
	if sp.Conc < 0 {
		return fmt.Errorf("conc %d must be >= 0", sp.Conc)
	}
	if sp.Cores < 0 || sp.Cores > 56 {
		return fmt.Errorf("cores %d out of range [0, 56]", sp.Cores)
	}
	if sp.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d must be >= 0", sp.TimeoutMS)
	}
	return nil
}

// protoKey is the protocol's identity segment in cacheKey: the protocol name,
// or the canonical axis tuple for a non-preset matrix point. Different
// textual spellings of one point ("vm=lazy,arb=ring" with defaulted axes vs
// the full tuple, a preset tuple vs its name) converge here, so they join the
// same live job.
func (sp *RunSpec) protoKey() string {
	if !sp.pol.IsZero() {
		return "policy:" + sp.pol.Canonical()
	}
	return sp.Protocol
}

// policyLabel is the bounded-cardinality /metrics label for the spec: the
// full canonical policy tuple for TM runs (preset or not), "fglock" for the
// lock variant. Only validated specs reach it, so the label set is the 12
// valid matrix points plus fglock.
func (sp *RunSpec) policyLabel() string {
	if !sp.pol.IsZero() {
		return sp.pol.Canonical()
	}
	if p, ok := policy.Preset(sp.Protocol); ok {
		return p.Canonical()
	}
	return sp.Protocol
}

// cacheKey is the spec's identity on the admission fast path: every field
// that shapes the run id, none of the per-request knobs (Async, TimeoutMS).
// Two specs with equal cacheKeys map to the same run id, so the server can
// join repeat traffic onto a live job without recomputing the content
// address (a canonical-JSON marshal plus a SHA-256) per request.
func (sp *RunSpec) cacheKey() string {
	return fmt.Sprintf("%s|%s|%g|%d|c%d|n%d|b%d",
		sp.protoKey(), sp.Benchmark, sp.Scale, sp.Seed, sp.Conc, sp.Cores, sp.CycleBudget)
}

// job translates the spec into the harness's cell identity.
func (sp *RunSpec) job() harness.Job {
	return harness.Job{
		Proto:       gpu.Protocol(sp.Protocol),
		Policy:      sp.pol,
		Bench:       sp.Benchmark,
		Conc:        sp.Conc,
		Cores:       sp.Cores,
		CycleBudget: sp.CycleBudget,
	}
}

// runID returns the request's public id. For an unbudgeted request this is
// exactly the result's content address in the on-disk store, so the id stays
// resolvable across server restarts (GET falls back to a store read). A
// budgeted request gets a "-b<budget>" suffix: its truncated result is a
// different artifact than the cell's complete one, but a complete stored
// record still satisfies it, so the store fallback strips the suffix.
func runID(storeKey string, sp RunSpec) string {
	if sp.CycleBudget == 0 {
		return storeKey
	}
	return storeKey + "-b" + strconv.FormatUint(sp.CycleBudget, 10)
}

// baseID strips a runID back to its store key.
func baseID(id string) string {
	if i := strings.IndexByte(id, '-'); i >= 0 {
		return id[:i]
	}
	return id
}

// storeKeyLen is the length of a content address: a hex-encoded SHA-256.
const storeKeyLen = 64

// parseRunID validates the wire shape of a run id — a 64-char lowercase-hex
// store key, optionally followed by a "-b<cycles>" budget suffix whose
// digits parse as a uint64 — and returns the base store key. Ids arrive on
// URL paths and end up in filesystem paths and peer requests, so anything
// else (empty, truncated, over-long, non-hex, a mangled suffix) is rejected
// here and surfaces as a 404, never a panic or a path escape.
func parseRunID(id string) (base string, ok bool) {
	if len(id) < storeKeyLen {
		return "", false
	}
	key := id[:storeKeyLen]
	for i := 0; i < storeKeyLen; i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", false
		}
	}
	rest := id[storeKeyLen:]
	if rest == "" {
		return key, true
	}
	if len(rest) < 3 || rest[0] != '-' || rest[1] != 'b' {
		return "", false
	}
	n, err := strconv.ParseUint(rest[2:], 10, 64)
	if err != nil || n == 0 {
		return "", false
	}
	return key, true
}
