package serve

import (
	"errors"
	"sync"
)

// Admission errors returned by fairQueue.push. Both surface to clients as
// 429 + Retry-After: the queue sheds load instead of buffering it.
var (
	errQueueFull  = errors.New("queue full")
	errClientFull = errors.New("client backlog full")
	errQueueDone  = errors.New("queue closed")
)

// fairQueue is the bounded wait queue between admission and the worker
// pool, replacing the PR 5 channel with per-client FIFOs dequeued by
// weighted round-robin. The bound still sheds load globally, but the
// dequeue order is fair: a tenant with ten thousand queued requests gets
// the same turn (scaled by its weight) as a tenant with one, so a hot
// client saturating the queue delays — never starves — the cold ones. An
// optional per-client backlog cap sheds the hot client's overflow before it
// can monopolize the global bound.
//
// Weighted round-robin: clients with pending work sit in a ring; each turn
// a client dequeues up to weight(client) requests before the cursor moves
// on. Weight 1 for everyone is plain round-robin; a weight-3 client drains
// three requests per turn. Per-client order stays FIFO.
type fairQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int // global bound across all clients
	perCap   int // per-client backlog bound
	weightOf func(string) int

	size    int
	clients map[string]*clientQ
	ring    []*clientQ // clients with pending items, in arrival order
	cursor  int
	closed  bool
}

// clientQ is one client's FIFO plus its round-robin state.
type clientQ struct {
	key       string
	items     []*jobState
	head      int // pop index; the slice compacts when fully drained
	remaining int // dequeues left in the current turn
	inRing    bool
}

func newFairQueue(capacity, perClient int, weightOf func(string) int) *fairQueue {
	if perClient <= 0 || perClient > capacity {
		perClient = capacity
	}
	q := &fairQueue{
		capacity: capacity,
		perCap:   perClient,
		weightOf: weightOf,
		clients:  make(map[string]*clientQ),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one job for client, or reports why it must be shed.
func (q *fairQueue) push(client string, js *jobState) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueDone
	}
	if q.size >= q.capacity {
		return errQueueFull
	}
	cq := q.clients[client]
	if cq == nil {
		cq = &clientQ{key: client}
		q.clients[client] = cq
	}
	if len(cq.items)-cq.head >= q.perCap {
		return errClientFull
	}
	cq.items = append(cq.items, js)
	if !cq.inRing {
		cq.inRing = true
		q.ring = append(q.ring, cq)
	}
	q.size++
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns it, choosing clients by
// weighted round-robin. After close it keeps draining the backlog and then
// returns ok=false — the worker-exit signal.
func (q *fairQueue) pop() (*jobState, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	if q.cursor >= len(q.ring) {
		q.cursor = 0
	}
	cq := q.ring[q.cursor]
	if cq.remaining <= 0 {
		cq.remaining = q.weight(cq.key)
	}
	js := cq.items[cq.head]
	cq.items[cq.head] = nil
	cq.head++
	cq.remaining--
	q.size--
	if cq.head == len(cq.items) {
		// Drained: leave the ring (order-preserving removal so round-robin
		// position is stable for everyone else) and forget the client — its
		// state is recreated on the next push, so the map stays bounded by
		// the set of clients with work.
		cq.items, cq.head, cq.remaining, cq.inRing = nil, 0, 0, false
		q.ring = append(q.ring[:q.cursor], q.ring[q.cursor+1:]...)
		delete(q.clients, cq.key)
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
	} else if cq.remaining == 0 {
		q.cursor++
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
	}
	return js, true
}

func (q *fairQueue) weight(client string) int {
	if q.weightOf == nil {
		return 1
	}
	if w := q.weightOf(client); w > 1 {
		return w
	}
	return 1
}

// len returns the number of queued jobs across all clients.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// clientCount returns the number of clients with queued work.
func (q *fairQueue) clientCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.clients)
}

// close stops accepting pushes and wakes every blocked pop; queued jobs
// keep draining until the queue is empty.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
