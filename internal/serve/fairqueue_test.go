package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkJob(id string) *jobState {
	return &jobState{id: id, done: make(chan struct{})}
}

// drainOrder pops every queued job and returns the client order implied by
// the job ids (tests encode the client in the id prefix).
func drainOrder(q *fairQueue) []string {
	var order []string
	for q.len() > 0 {
		js, ok := q.pop()
		if !ok {
			break
		}
		order = append(order, js.id)
	}
	return order
}

func TestFairQueueRoundRobinInterleavesClients(t *testing.T) {
	q := newFairQueue(16, 0, nil)
	// Client a floods first; b and c each queue one request afterward.
	for i := 0; i < 4; i++ {
		if err := q.push("a", mkJob(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q.push("b", mkJob("b0"))
	q.push("c", mkJob("c0"))

	got := drainOrder(q)
	want := []string{"a0", "b0", "c0", "a1", "a2", "a3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order %v, want %v (hot client must not starve cold ones)", got, want)
	}
}

func TestFairQueueWeightsBiasTurns(t *testing.T) {
	weights := map[string]int{"a": 2}
	q := newFairQueue(16, 0, func(c string) int { return weights[c] })
	for i := 0; i < 4; i++ {
		q.push("a", mkJob(fmt.Sprintf("a%d", i)))
	}
	q.push("b", mkJob("b0"))
	q.push("c", mkJob("c0"))

	got := drainOrder(q)
	// Weight 2: a drains two per turn before the cursor moves on.
	want := []string{"a0", "a1", "b0", "c0", "a2", "a3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("dequeue order %v, want %v", got, want)
	}
}

func TestFairQueuePerClientFIFO(t *testing.T) {
	q := newFairQueue(8, 0, nil)
	for i := 0; i < 5; i++ {
		q.push("a", mkJob(fmt.Sprintf("a%d", i)))
	}
	got := drainOrder(q)
	want := []string{"a0", "a1", "a2", "a3", "a4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("single-client order %v, want FIFO %v", got, want)
	}
}

func TestFairQueueGlobalBound(t *testing.T) {
	q := newFairQueue(2, 0, nil)
	if err := q.push("a", mkJob("a0")); err != nil {
		t.Fatal(err)
	}
	if err := q.push("b", mkJob("b0")); err != nil {
		t.Fatal(err)
	}
	if err := q.push("c", mkJob("c0")); err != errQueueFull {
		t.Fatalf("push over capacity: got %v, want errQueueFull", err)
	}
}

func TestFairQueuePerClientBound(t *testing.T) {
	q := newFairQueue(8, 2, nil)
	q.push("a", mkJob("a0"))
	q.push("a", mkJob("a1"))
	if err := q.push("a", mkJob("a2")); err != errClientFull {
		t.Fatalf("push over per-client cap: got %v, want errClientFull", err)
	}
	// Other clients still have headroom while a is capped.
	if err := q.push("b", mkJob("b0")); err != nil {
		t.Fatalf("other client shed alongside the hot one: %v", err)
	}
}

func TestFairQueueCloseDrainsBacklogThenStops(t *testing.T) {
	q := newFairQueue(8, 0, nil)
	q.push("a", mkJob("a0"))
	q.push("a", mkJob("a1"))
	q.close()

	if err := q.push("a", mkJob("a2")); err != errQueueDone {
		t.Fatalf("push after close: got %v, want errQueueDone", err)
	}
	for i := 0; i < 2; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d after close: queue dropped its backlog", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on closed empty queue returned a job")
	}
}

func TestFairQueuePopBlocksUntilPush(t *testing.T) {
	q := newFairQueue(8, 0, nil)
	got := make(chan string, 1)
	go func() {
		js, ok := q.pop()
		if ok {
			got <- js.id
		} else {
			got <- "!closed"
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.push("a", mkJob("a0"))
	select {
	case id := <-got:
		if id != "a0" {
			t.Fatalf("blocked pop returned %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake on push")
	}
}

func TestFairQueueConcurrentPushersAndPoppers(t *testing.T) {
	const clients, perClient = 8, 50
	q := newFairQueue(clients*perClient, 0, nil)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				for q.push(fmt.Sprintf("c%d", c), mkJob(fmt.Sprintf("c%d-%d", c, i))) != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(c)
	}
	popped := make(chan int, 4)
	for w := 0; w < 4; w++ {
		go func() {
			n := 0
			for {
				if _, ok := q.pop(); !ok {
					popped <- n
					return
				}
				n++
			}
		}()
	}
	wg.Wait()
	for q.len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.close()
	total := 0
	for w := 0; w < 4; w++ {
		total += <-popped
	}
	if total != clients*perClient {
		t.Fatalf("popped %d jobs, pushed %d", total, clients*perClient)
	}
	if n := q.clientCount(); n != 0 {
		t.Fatalf("drained queue still tracks %d clients", n)
	}
}
