package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"getm/internal/stats"
	"getm/internal/store"
)

// blockingStub returns an execute hook that parks every run on release and
// counts distinct executions. The hook honours ctx like the real engine.
func blockingStub(execs *atomic.Int64, release chan struct{}) func(context.Context, *jobState) (*stats.Metrics, string, error) {
	return func(ctx context.Context, js *jobState) (*stats.Metrics, string, error) {
		execs.Add(1)
		select {
		case <-release:
			m := stats.NewMetrics()
			m.TotalCycles = 4242
			m.Commits = 7
			return m, "run", nil
		case <-ctx.Done():
			return nil, "run", fmt.Errorf("stub canceled: %w", context.Cause(ctx))
		}
	}
}

func postRun(t *testing.T, url string, spec string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeRun(t *testing.T, resp *http.Response) Response {
	t.Helper()
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	return out
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, MaxScale: 0.5})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	for name, body := range map[string]string{
		"bad json":        `{"protocol":`,
		"bad protocol":    `{"protocol":"mesi","benchmark":"ht-h"}`,
		"bad benchmark":   `{"protocol":"getm","benchmark":"nope"}`,
		"scale too big":   `{"protocol":"getm","benchmark":"ht-h","scale":0.9}`,
		"negative conc":   `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"conc":-1}`,
		"cores oversized": `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"cores":57}`,
	} {
		resp := postRun(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// Saturation must shed load — 429 plus a Retry-After hint — and flip
// /readyz, recovering once the queue empties.
func TestQueueFullShedsLoadAndReadyzFlips(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("idle readyz = %d %q, want 200", code, body)
	}

	// Three distinct async jobs: one runs, one waits, one is shed. Submit
	// the second only once the worker has dequeued the first, so the single
	// queue slot is deterministically free for it.
	spec := `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d,"async":true}`
	ids := make([]string, 0, 2)
	resp := postRun(t, ts.URL, fmt.Sprintf(spec, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: status %d, want 202", resp.StatusCode)
	}
	ids = append(ids, decodeRun(t, resp).ID)
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.running.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions with one worker, want 1", got)
	}
	resp = postRun(t, ts.URL, fmt.Sprintf(spec, 2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: status %d, want 202", resp.StatusCode)
	}
	ids = append(ids, decodeRun(t, resp).ID)

	resp = postRun(t, ts.URL, fmt.Sprintf(spec, 3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	resp.Body.Close()

	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "saturated") {
		t.Errorf("saturated readyz = %d %q, want 503 saturated", code, body)
	}

	close(release)
	for _, id := range ids {
		waitDone(t, s, id)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("drained readyz = %d, want 200", code)
	}
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitDone(t *testing.T, s *Server, id string) Response {
	t.Helper()
	js, ok := s.pool.lookup(id)
	if !ok {
		t.Fatalf("unknown job %s", id)
	}
	select {
	case <-js.done:
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return s.snapshot(js)
}

// Identical concurrent submissions collapse onto one jobState and one
// execution; every client still gets the full result.
func TestIdenticalSubmissionsCollapse(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	spec := `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"conc":4}`
	results := make([]Response, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}()
	}
	// Release once the single shared execution has started and every client
	// has had a chance to pile onto it.
	deadline := time.Now().Add(5 * time.Second)
	for execs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d identical submissions, want 1", execs.Load(), n)
	}
	id := results[0].ID
	for i, r := range results {
		if r.ID != id || r.Status != "done" || r.Metrics == nil || r.Metrics.TotalCycles != 4242 {
			t.Fatalf("client %d got %+v", i, r)
		}
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
}

// Draining refuses new work with 503 while letting the in-flight run finish;
// a drain that overstays its timeout cancels the work instead of hanging.
func TestDrainGracefulThenForced(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"async":true}`)
	id := decodeRun(t, resp).ID
	deadline := time.Now().Add(5 * time.Second)
	for execs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(30 * time.Second) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// A late request is refused while the in-flight one is still running.
	late := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":9}`)
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("late submit during drain: status %d, want 503", late.StatusCode)
	}
	late.Body.Close()
	if code, body := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("draining readyz = %d %q", code, body)
	}

	// The in-flight run survives the drain and completes.
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
	if r := waitDone(t, s, id); r.Status != "done" || r.Metrics == nil {
		t.Fatalf("in-flight run did not survive the drain: %+v", r)
	}

	// Forced path: a fresh server whose run ignores release until canceled.
	s2 := New(Config{Workers: 1, QueueDepth: 4})
	var execs2 atomic.Int64
	s2.execute = blockingStub(&execs2, make(chan struct{})) // never released
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	resp2 := postRun(t, ts2.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"async":true}`)
	id2 := decodeRun(t, resp2).ID
	deadline = time.Now().Add(5 * time.Second)
	for execs2.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := s2.Drain(50 * time.Millisecond)
	if err == nil {
		t.Fatal("forced drain reported success")
	}
	if r := waitDone(t, s2, id2); r.Status != "failed" || !strings.Contains(r.Error, "drain") {
		t.Fatalf("canceled run state = %+v", r)
	}
}

// The async lifecycle: 202 with id, observable queued/running states, done
// with metrics; unknown ids 404; completed cells resolve durably from the
// store even on a server that never ran them.
func TestAsyncStatusAndDurableStore(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 4, Store: store.Open(dir)})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d, want 202", resp.StatusCode)
	}
	sub := decodeRun(t, resp)
	if sub.ID == "" || (sub.Status != "queued" && sub.Status != "running") {
		t.Fatalf("async ack = %+v", sub)
	}

	code, body := getBody(t, ts.URL+"/v1/runs/"+sub.ID)
	if code != http.StatusOK || !(strings.Contains(body, "queued") || strings.Contains(body, "running")) {
		t.Fatalf("pending status = %d %q", code, body)
	}
	close(release)
	waitDone(t, s, sub.ID)
	code, body = getBody(t, ts.URL+"/v1/runs/"+sub.ID)
	if code != http.StatusOK || !strings.Contains(body, `"done"`) || !strings.Contains(body, "4242") {
		t.Fatalf("done status = %d %q", code, body)
	}

	if code, _ := getBody(t, ts.URL+"/v1/runs/no-such-id"); code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", code)
	}

	// Durability: persist the result under the id's base key, then ask a
	// fresh server that has never executed anything.
	m := stats.NewMetrics()
	m.TotalCycles = 999
	if err := store.Open(dir).Put(baseID(sub.ID), "test", m); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, QueueDepth: 4, Store: store.Open(dir)})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	code, body = getBody(t, ts2.URL+"/v1/runs/"+sub.ID)
	if code != http.StatusOK || !strings.Contains(body, `"store"`) || !strings.Contains(body, "999") {
		t.Fatalf("durable status = %d %q", code, body)
	}
	s.Drain(time.Second)
	s2.Drain(time.Second)
}

// /metrics exposes the serving counters in text exposition format.
func TestMetricsExposition(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	var execs atomic.Int64
	release := make(chan struct{})
	close(release) // run instantly
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"getm_serve_queue_depth 0",
		"getm_serve_queue_capacity 2",
		"getm_serve_workers 1",
		"getm_serve_requests_total 1",
		"getm_serve_completed_total 1",
		"getm_serve_rejected_total 0",
		"getm_serve_simulated_total",
		"getm_serve_store_hits_total",
		`getm_serve_run_latency_seconds{quantile="0.5"}`,
		`getm_serve_run_latency_seconds{quantile="0.99"}`,
		"getm_serve_run_latency_seconds_count 1",
		"# TYPE getm_serve_queue_depth gauge",
		"# TYPE getm_serve_requests_total counter",
		"# TYPE getm_serve_run_latency_seconds summary",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// A budgeted request gets a distinct id from the unbudgeted cell, and its
// truncated result is reported as such, never persisted.
func TestBudgetedRequestTruncated(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 2, Store: store.Open(dir)})
	s.execute = func(ctx context.Context, js *jobState) (*stats.Metrics, string, error) {
		m := stats.NewMetrics()
		m.TotalCycles = js.spec.CycleBudget
		m.Truncated = js.spec.CycleBudget != 0
		return m, "run", nil
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	full := decodeRun(t, postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`))
	budgeted := decodeRun(t, postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"cycle_budget":5000}`))
	if full.ID == budgeted.ID {
		t.Fatal("budgeted and unbudgeted requests share an id")
	}
	if baseID(budgeted.ID) != full.ID {
		t.Fatalf("budgeted id %q does not derive from base %q", budgeted.ID, full.ID)
	}
	if !budgeted.Truncated || budgeted.Metrics == nil || !budgeted.Metrics.Truncated {
		t.Fatalf("budgeted response not marked truncated: %+v", budgeted)
	}
	if full.Truncated {
		t.Fatalf("full response marked truncated: %+v", full)
	}
}
