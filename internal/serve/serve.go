// Package serve turns the simulator into a production-shaped HTTP service:
// simulation requests become bounded, deduplicated, cancellable work items.
//
// The serving discipline, in one paragraph: every POST /v1/runs is admitted
// onto a bounded wait queue feeding a fixed worker pool, or refused
// immediately with 429 + Retry-After when the queue is full — the server
// sheds load instead of buffering it without bound. Each admitted request
// runs under its own wall-clock deadline (gpu.RunContext stops the engine
// within one chunk of simulated cycles). Identical concurrent requests
// collapse onto a single simulation twice over: at the queue (one job entry
// per distinct request) and in harness.Runner's singleflight map. Completed
// results persist to the crash-safe result store, so repeat traffic — across
// restarts too — is a disk read, never a simulation. SIGTERM triggers a
// graceful drain: stop accepting, finish (or, past the drain timeout,
// cancel) everything in flight, exit clean.
//
// Endpoints:
//
//	POST /v1/runs        submit a RunSpec; sync by default, 202 + id when async
//	GET  /v1/runs/{id}   durable job status: pending states in memory,
//	                     completed results from the store
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         readiness (200 only with queue headroom, 503 draining)
//	GET  /metrics        text exposition: queue depth, in-flight workers,
//	                     store hits, simulated count, p50/p99 latency
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/store"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of simulations executed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the wait queue behind the workers; a request
	// arriving with the queue full is refused with 429 (default 64).
	QueueDepth int
	// MaxScale is the admission ceiling for RunSpec.Scale (default 1.0).
	MaxScale float64
	// RequestTimeout is the default — and the cap — for each request's
	// wall-clock deadline (default 60s).
	RequestTimeout time.Duration
	// Store, if non-nil, is the durable result tier shared by every runner.
	Store *store.Store
	// Verbose, if set, receives progress lines.
	Verbose func(string)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	return c
}

// jobStatus is the lifecycle of one admitted run.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// jobState is the unit the queue carries and the job table tracks: one
// distinct request, shared by every client that submitted it.
type jobState struct {
	id   string
	spec RunSpec

	// done closes when the run finishes (either way); the fields below are
	// written before the close and read-only after it.
	done      chan struct{}
	m         *stats.Metrics
	err       error
	elapsedMS int64
	source    string // cache | store | run

	// status is guarded by Server.mu until done closes.
	status jobStatus
}

// Response is the JSON shape of both POST and GET run endpoints.
type Response struct {
	ID        string         `json:"id"`
	Status    string         `json:"status"`
	Source    string         `json:"source,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms,omitempty"`
	Error     string         `json:"error,omitempty"`
	Metrics   *stats.Metrics `json:"metrics,omitempty"`
}

// Server is the HTTP front end. Create with New, serve via http.Server
// (Server implements http.Handler), stop with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	pool *pool
	met  *metricsSet

	// execute runs one admitted job; tests substitute a stub.
	execute func(ctx context.Context, js *jobState) (*stats.Metrics, string, error)
}

// New builds a server (workers started immediately).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), mux: http.NewServeMux(), met: newMetricsSet()}
	s.execute = s.simulate
	s.pool = newPool(s)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully stops the service: new submissions are refused with 503,
// queued and in-flight runs get until timeout to finish, anything still
// running past it is canceled (the engines stop within one chunk of cycles),
// and the worker pool exits. Drain returns nil when everything completed in
// time and an error describing the cut-short work otherwise; either way the
// pool is fully stopped on return.
func (s *Server) Drain(timeout time.Duration) error {
	s.log("draining: refusing new work, waiting up to " + timeout.String())
	return s.pool.drain(timeout)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.pool.draining.Load() }

func (s *Server) log(msg string) {
	if s.cfg.Verbose != nil {
		s.cfg.Verbose(msg)
	}
}

// handleSubmit admits one run request: fast-path cache/store hit, then a
// bounded-queue slot, then 429.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	var sp RunSpec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sp.normalize()
	if err := sp.validate(s.cfg.MaxScale); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	js, outcome := s.pool.admit(sp)
	switch outcome {
	case admitDraining:
		s.met.rejected.Add(1)
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	case admitFull:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting, %d running); retry later", s.cfg.QueueDepth, s.cfg.Workers))
		return
	}

	if sp.Async {
		writeStatusJSON(w, http.StatusAccepted, s.snapshot(js))
		return
	}

	// Sync: wait for the run (bounded by its own deadline inside the pool)
	// or for the client to go away. An abandoned wait does not cancel the
	// shared run — other clients may be waiting on the same jobState.
	select {
	case <-js.done:
		resp := s.snapshot(js)
		if js.err != nil {
			writeStatusJSON(w, httpStatusFor(js.err), resp)
			return
		}
		writeJSON(w, resp)
	case <-r.Context().Done():
		// Client disconnected; nothing useful to write.
	}
}

// handleStatus reports one run: live states from the job table, completed
// unbudgeted runs durably from the store (so ids survive restarts).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if js, ok := s.pool.lookup(id); ok {
		select {
		case <-js.done:
			resp := s.snapshot(js)
			if js.err != nil {
				writeStatusJSON(w, http.StatusOK, resp) // the job failed, not this request
				return
			}
			writeJSON(w, resp)
		default:
			writeJSON(w, s.snapshot(js))
		}
		return
	}
	if s.cfg.Store != nil {
		if m, ok := s.cfg.Store.Get(baseID(id)); ok {
			s.met.storeStatusHits.Add(1)
			writeJSON(w, Response{ID: id, Status: string(statusDone), Source: "store", Metrics: m})
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown run id %q", id))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz flips to 503 when the queue has no headroom or the server is
// draining — the signal a load balancer uses to steer traffic away before
// requests start bouncing off 429s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.pool.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case !s.pool.hasHeadroom():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s.pool)
}

// snapshot renders a job's current state (done fields are stable after the
// close; live states read under the pool lock).
func (s *Server) snapshot(js *jobState) Response {
	select {
	case <-js.done:
		resp := Response{ID: js.id, Status: string(statusDone), Source: js.source, ElapsedMS: js.elapsedMS}
		if js.err != nil {
			resp.Status = string(statusFailed)
			resp.Error = js.err.Error()
		}
		if js.m != nil {
			resp.Metrics = js.m
			resp.Truncated = js.m.Truncated
		}
		return resp
	default:
		return Response{ID: js.id, Status: string(s.pool.statusOf(js))}
	}
}

// retryAfterSeconds estimates when a queue slot will free up: the queue's
// drain time at the recent mean latency, floored at one second.
func (s *Server) retryAfterSeconds() int {
	meanMS := s.met.meanLatencyMS()
	if meanMS <= 0 {
		return 1
	}
	secs := int(float64(s.cfg.QueueDepth) * meanMS / float64(s.cfg.Workers) / 1000)
	if secs < 1 {
		return 1
	}
	if secs > 600 {
		return 600
	}
	return secs
}

// httpStatusFor maps a run error to a response code: a deadline/cancel is
// the request's fault (408), everything else a simulation failure (500).
func httpStatusFor(err error) int {
	if errors.Is(err, gpu.ErrCanceled) {
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v any) {
	writeStatusJSON(w, http.StatusOK, v)
}

func writeStatusJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeStatusJSON(w, code, map[string]string{"error": err.Error()})
}
