// Package serve turns the simulator into a production-shaped HTTP service:
// simulation requests become bounded, deduplicated, cancellable work items.
//
// The serving discipline, in one paragraph: every POST /v1/runs is admitted
// through a per-client token-bucket quota onto a bounded fair queue feeding
// a fixed worker pool, or refused immediately with 429 + Retry-After — the
// server sheds load instead of buffering it without bound, and one hot
// tenant can neither starve the dequeue order (weighted round-robin across
// clients) nor flood admission (quota). Each admitted request runs under
// its own wall-clock deadline (gpu.RunContext stops the engine within one
// chunk of simulated cycles). Identical requests collapse onto a single
// simulation three times over: a lock-free fast path joins repeat traffic
// onto the live jobState in one transition (no pool lock, no queue slot),
// the job table deduplicates admissions, and harness.Runner's singleflight
// map deduplicates executions. Completed results accumulate in a
// write-behind coalescer and persist to the crash-safe store as one batched
// fsync'd commit per flush, so repeat traffic — across restarts too — is a
// disk read, never a simulation. SIGTERM triggers a graceful drain: stop
// accepting, finish (or, past the drain timeout, cancel) everything in
// flight, flush the coalescer, exit clean.
//
// Endpoints:
//
//	POST /v1/runs        submit a RunSpec; sync by default, 202 + id when async
//	POST /v1/runs/batch  submit a JSON array of RunSpecs in one round trip;
//	                     the response is the matching array of run responses
//	                     (admission batching for high-throughput clients)
//	GET  /v1/runs/{id}   durable job status: pending states in memory,
//	                     completed results from the store
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         readiness (200 only with queue headroom, 503 draining)
//	GET  /metrics        text exposition: queue depth, in-flight workers,
//	                     store hits, simulated count, latency quantiles
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/store"
)

// maxBatch caps one POST /v1/runs/batch submission.
const maxBatch = 256

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of simulations executed concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the wait queue behind the workers; a request
	// arriving with the queue full is refused with 429 (default 64).
	QueueDepth int
	// MaxScale is the admission ceiling for RunSpec.Scale (default 1.0).
	MaxScale float64
	// RequestTimeout is the default — and the cap — for each request's
	// wall-clock deadline (default 60s).
	RequestTimeout time.Duration
	// Store, if non-nil, is the durable result tier shared by every runner.
	Store *store.Store
	// Verbose, if set, receives progress lines.
	Verbose func(string)

	// QuotaRPS is the per-client admission rate (requests per second)
	// enforced by a token bucket ahead of the queue; a client submitting
	// faster is shed with 429 + Retry-After before it can consume a queue
	// slot (0 = no quota).
	QuotaRPS float64
	// QuotaBurst is the token-bucket depth (default: one second of QuotaRPS,
	// at least 1).
	QuotaBurst int
	// ClientHeader names the request header carrying the client key used
	// for quotas and fair queueing (default "X-Client-ID"; requests without
	// it key by remote host).
	ClientHeader string
	// ClientWeights assigns fair-dequeue weights per client key; a weight-w
	// client drains up to w queued requests per round-robin turn (absent or
	// < 1 = weight 1).
	ClientWeights map[string]int
	// PerClientQueue caps one client's share of the wait queue; its excess
	// is shed with 429 while other clients still have headroom
	// (0 = QueueDepth, i.e. no per-client cap).
	PerClientQueue int

	// FlushInterval is the write-behind cadence of the store coalescer:
	// completed results accumulate in memory and commit as one batched
	// fsync'd write per interval (default 100ms). Server.Drain always runs
	// a final flush, so a graceful shutdown loses nothing.
	FlushInterval time.Duration
	// FlushHighWater forces an immediate flush when this many records are
	// pending (default 64).
	FlushHighWater int

	// Spans enables request-scoped observability: the lifecycle span
	// recorder (GET /v1/spans), the X-Getm-Timings response header, and
	// sim-level trace capture for executed runs (a bounded LRU of
	// trace.Recorders keyed by run id, merged into the /v1/spans Perfetto
	// export). Disabled — the default — the serve hot path pays one pointer
	// compare per emit site and allocates zero extra bytes per request;
	// results are identical either way (tracing is cycle-neutral by the
	// trace layer's contract). Ignored in Baseline mode: the control arm
	// keeps the PR 5 surface exactly.
	Spans bool
	// SpanRing is the lifecycle ring capacity in records, rounded up to a
	// power of two (default 16384). When the ring fills, the oldest records
	// are overwritten.
	SpanRing int
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's mux.
	// Off by default: profiling endpoints are a diagnostic surface, not part
	// of the serving API.
	Pprof bool

	// SLOP99 is the p99 run-latency objective the burn-rate counters are
	// derived from: every run slower than this increments
	// getm_serve_slo_slow_requests_total (default 250ms — the load-gate
	// target).
	SLOP99 time.Duration
	// SLOShedTarget is the shed-ratio objective exposed as a gauge next to
	// the shed counters, so a dashboard computes burn rate without
	// hard-coding the target (default 0.01).
	SLOShedTarget float64

	// Baseline restores the PR 5 per-request-write discipline: no write
	// coalescing (every completed simulation fsyncs synchronously on the
	// worker), no lock-free admission fast path, no cached response
	// rendering. It exists as the control arm for cmd/getm-load
	// before/after measurements.
	Baseline bool

	// Role selects the node's cluster duty. "" and RoleWorker execute
	// submissions locally; RoleCoordinator routes every submission across
	// Peers by rendezvous hash of the store key and never simulates itself.
	Role string
	// Peers lists the base URLs of the other cluster nodes. On a
	// coordinator they are the routing targets; on a worker they are the
	// store-sync sources consulted (via GET /v1/store/{id}) when a result
	// misses the local store. Empty disables clustering entirely.
	Peers []string
	// HedgeDelay is the fixed wait before a slow forwarded run is hedged to
	// the next-ranked peer (coordinator only). 0 — the default — derives the
	// delay from the observed forward-latency p99, falling back to 50ms
	// until enough samples exist.
	HedgeDelay time.Duration
	// ProbeInterval is the peer health-probe cadence (default 250ms): each
	// tick GETs every peer's /readyz and refreshes its liveness and queue
	// headroom, the inputs to routing and work-stealing.
	ProbeInterval time.Duration
}

// Cluster roles accepted by Config.Role.
const (
	RoleWorker      = "worker"
	RoleCoordinator = "coordinator"
)

// Validate rejects cluster configurations that cannot work: an unknown
// role, a coordinator with nobody to route to, or peer URLs that do not
// parse. CLIs call it before New so misconfiguration is a startup error,
// not a serving-time surprise.
func (c Config) Validate() error {
	switch c.Role {
	case "", RoleWorker, RoleCoordinator:
	default:
		return fmt.Errorf("unknown role %q (want %q or %q)", c.Role, RoleWorker, RoleCoordinator)
	}
	if c.Role == RoleCoordinator && len(c.Peers) == 0 {
		return errors.New("role coordinator requires at least one peer")
	}
	for _, p := range c.Peers {
		u, err := url.Parse(p)
		if err != nil {
			return fmt.Errorf("peer %q: %w", p, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("peer %q: want an http(s) base URL like http://host:port", p)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxScale <= 0 {
		c.MaxScale = 1.0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.ClientHeader == "" {
		c.ClientHeader = "X-Client-ID"
	}
	if c.SLOP99 <= 0 {
		c.SLOP99 = 250 * time.Millisecond
	}
	if c.SLOShedTarget <= 0 {
		c.SLOShedTarget = 0.01
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	return c
}

// jobStatus is the lifecycle of one admitted run.
type jobStatus int32

const (
	statusQueued jobStatus = iota
	statusRunning
	statusDone
	statusFailed
)

func (s jobStatus) String() string {
	switch s {
	case statusQueued:
		return "queued"
	case statusRunning:
		return "running"
	case statusDone:
		return "done"
	default:
		return "failed"
	}
}

// jobState is the unit the queue carries and the job table tracks: one
// distinct request, shared by every client that submitted it.
type jobState struct {
	id     string
	spec   RunSpec
	client string // first submitter's client key (fair-queue lane)

	// queuedAt stamps admission; the worker derives queue wait from it.
	queuedAt time.Time

	// done closes when the run finishes (either way); the fields below are
	// written before the close and read-only after it.
	done      chan struct{}
	m         *stats.Metrics
	err       error
	elapsedMS int64
	source    string // cache | store | run

	// Per-stage wall time (µs), the request-scoped breakdown behind
	// X-Getm-Timings and GET /v1/runs/{id}/timings. queueUS and simUS are
	// written by the executing worker before done closes; persistUS is
	// atomic because the persist hook resolves jobs by store key, and a
	// budgeted sibling completing within budget may attribute its persist to
	// the unbudgeted jobState concurrently.
	queueUS   int64
	simUS     int64
	persistUS atomic.Int64

	// status is atomic so status reads never touch the pool lock.
	status atomic.Int32

	// rendered caches the run's JSON response bytes once it completes
	// successfully; repeat traffic writes the cached bytes instead of
	// re-encoding the metrics per request.
	rendered atomic.Pointer[[]byte]
}

func (js *jobState) setStatus(s jobStatus) { js.status.Store(int32(s)) }
func (js *jobState) getStatus() jobStatus  { return jobStatus(js.status.Load()) }

// Response is the JSON shape of both POST and GET run endpoints. In a
// batch response, shed or invalid submissions carry Status "shed" or
// "invalid" with the reason in Error.
type Response struct {
	ID        string         `json:"id,omitempty"`
	Status    string         `json:"status"`
	Source    string         `json:"source,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms,omitempty"`
	Error     string         `json:"error,omitempty"`
	Metrics   *stats.Metrics `json:"metrics,omitempty"`
}

// Server is the HTTP front end. Create with New, serve via http.Server
// (Server implements http.Handler), stop with Drain.
type Server struct {
	cfg Config
	mux *http.ServeMux

	pool   *pool
	met    *metricsSet
	coal   *coalescer // nil without a store or in baseline mode
	quotas *quotas    // nil without a quota

	// cluster holds peer state — health, headroom, routing, hedging — and is
	// nil unless Config.Peers is non-empty.
	cluster *cluster

	// spans is the lifecycle recorder; nil when disabled, and every emit
	// site guards with exactly one pointer compare (Server.span).
	spans *spanRecorder
	// traces retains sim recorders for recently executed runs (only with
	// spans enabled).
	traces *traceKeeper

	// idCache maps a spec's identity (spec.cacheKey) to its run id so the
	// admission fast path never recomputes the content address — the
	// SHA-256 over the canonical config — per request.
	idCache sync.Map

	// execute runs one admitted job; tests substitute a stub.
	execute func(ctx context.Context, js *jobState) (*stats.Metrics, string, error)
}

// New builds a server (workers started immediately).
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), mux: http.NewServeMux(), met: newMetricsSet()}
	s.met.sloP99 = s.cfg.SLOP99
	s.execute = s.simulate
	if s.cfg.Store != nil && !s.cfg.Baseline {
		s.coal = newCoalescer(s.cfg.Store, s.cfg.FlushInterval, s.cfg.FlushHighWater, s.cfg.Verbose)
		s.coal.onFlush = s.observeFlush
	}
	if s.cfg.Spans && !s.cfg.Baseline {
		s.spans = newSpanRecorder(s.cfg.SpanRing)
		s.traces = newTraceKeeper()
	}
	s.quotas = newQuotas(s.cfg.QuotaRPS, s.cfg.QuotaBurst)
	s.pool = newPool(s)
	if len(s.cfg.Peers) > 0 {
		s.cluster = newCluster(s)
		if s.cfg.Store != nil {
			// Store sync: a local store miss transparently fetches the record
			// from the peer that owns (or executed) the cell and writes it
			// through, so any node answers GET /v1/runs/{id} and no node ever
			// re-simulates a cell the cluster already paid for.
			s.cfg.Store.SetFill(s.cluster.fill)
		}
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/runs/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/runs/{id}/timings", s.handleTimings)
	s.mux.HandleFunc("GET /v1/store/{key}", s.handleStoreRecord)
	s.mux.HandleFunc("GET /v1/spans", s.handleSpans)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// observeFlush is the coalescer's commit hook: it feeds the flush-latency
// histogram and (when enabled) emits a flush lifecycle span.
func (s *Server) observeFlush(d time.Duration, records int) {
	s.met.observeFlush(d)
	s.span(stageFlush, "", "", uint64(d.Microseconds()), uint64(records))
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully stops the service: new submissions are refused with 503,
// queued and in-flight runs get until timeout to finish, anything still
// running past it is canceled (the engines stop within one chunk of cycles),
// the worker pool exits, and the write-behind coalescer runs its final flush
// — every acknowledged result is durable before Drain returns. Drain
// returns nil when everything completed in time and an error describing the
// cut-short work otherwise; either way the pool is fully stopped and the
// store flushed on return.
func (s *Server) Drain(timeout time.Duration) error {
	s.log("draining: refusing new work, waiting up to " + timeout.String())
	if s.cluster != nil {
		s.cluster.close()
	}
	err := s.pool.drain(timeout)
	if s.coal != nil {
		if ferr := s.coal.close(); ferr != nil {
			err = errors.Join(err, ferr)
		}
	}
	return err
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.pool.draining.Load() }

func (s *Server) log(msg string) {
	if s.cfg.Verbose != nil {
		s.cfg.Verbose(msg)
	}
}

// clientKey identifies the requesting tenant: the configured client header
// when present, else the remote host.
func (s *Server) clientKey(r *http.Request) string {
	if v := r.Header.Get(s.cfg.ClientHeader); v != "" {
		return v
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// fastJoin is the lock-free dedupe path: a spec whose id is already cached
// and whose jobState is live (or completed successfully) joins it in one
// sync.Map transition — no pool lock, no queue slot, no key recomputation.
// Failed jobs fall through to the slow path so a fresh submission gets a
// fresh attempt, exactly like the locked path.
func (s *Server) fastJoin(sp *RunSpec) (*jobState, bool) {
	if s.cfg.Baseline {
		return nil, false
	}
	idv, ok := s.idCache.Load(sp.cacheKey())
	if !ok {
		return nil, false
	}
	v, ok := s.pool.jobsFast.Load(idv.(string))
	if !ok {
		return nil, false
	}
	js := v.(*jobState)
	select {
	case <-js.done:
		if js.err != nil {
			return nil, false
		}
	default:
	}
	return js, true
}

// handleSubmit admits one run request: quota, then the lock-free dedupe
// fast path, then a bounded fair-queue slot, then 429.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { s.met.observeHTTP(time.Since(start)) }()
	s.met.requests.Add(1)
	client := s.clientKey(r)
	s.met.clientRequest(client, 1)
	s.span(stageReceive, client, "", 0, 0)
	var sp RunSpec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sp.normalize()
	if err := sp.validate(s.cfg.MaxScale); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.met.policyRequest(sp.policyLabel(), 1)

	if s.quotas != nil {
		if ok, retry := s.quotas.allow(client, time.Now()); !ok {
			s.met.rejected.Add(1)
			s.met.quotaRejected.Add(1)
			s.met.clientShed(client, 1)
			s.span(stageQuota, client, "", 0, 0)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(retry)))
			writeError(w, http.StatusTooManyRequests,
				fmt.Errorf("over per-client quota (%g req/s); retry later", s.cfg.QuotaRPS))
			return
		}
	}

	if s.routesRemotely(r) {
		s.cluster.forwardRun(w, r, sp, client, start)
		return
	}

	if js, ok := s.fastJoin(&sp); ok {
		s.met.deduped.Add(1)
		s.span(stageJoin, client, js.id, 0, 0)
		s.finishSubmit(w, r, js, sp.Async, client, start)
		return
	}

	js, outcome := s.pool.admit(sp, client)
	switch outcome {
	case admitDraining:
		s.met.rejected.Add(1)
		s.met.clientShed(client, 1)
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	case admitFull:
		s.met.rejected.Add(1)
		s.met.clientShed(client, 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d waiting, %d running); retry later", s.cfg.QueueDepth, s.cfg.Workers))
		return
	case admitClientFull:
		s.met.rejected.Add(1)
		s.met.clientShed(client, 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("client backlog full (%d queued); retry later", s.pool.perClientCap()))
		return
	}
	s.finishSubmit(w, r, js, sp.Async, client, start)
}

// finishSubmit writes the submission response: 202 immediately when async,
// else the run's outcome once it completes (bounded by its own deadline
// inside the pool) or nothing if the client goes away first. An abandoned
// wait does not cancel the shared run — other clients may be waiting on the
// same jobState.
func (s *Server) finishSubmit(w http.ResponseWriter, r *http.Request, js *jobState, async bool, client string, start time.Time) {
	if async {
		writeStatusJSON(w, http.StatusAccepted, s.snapshot(js))
		s.span(stageRespond, client, js.id, uint64(time.Since(start).Microseconds()), 0)
		return
	}
	select {
	case <-js.done:
		if js.err != nil {
			writeStatusJSON(w, httpStatusFor(js.err), s.snapshot(js))
			return
		}
		if s.spans != nil {
			setTimingsHeader(w.Header(), js.queueUS, js.simUS, js.persistUS.Load())
		}
		s.writeDone(w, js)
		s.span(stageRespond, client, js.id, uint64(time.Since(start).Microseconds()), 0)
	case <-r.Context().Done():
		// Client disconnected; nothing useful to write.
	}
}

// setTimingsHeader writes the server-side stage breakdown (µs) so a load
// harness can put client-observed and server-reported latency side by side
// without a second request. Format: "queue=<µs>;sim=<µs>;persist=<µs>".
func setTimingsHeader(h http.Header, queueUS, simUS, persistUS int64) {
	h.Set("X-Getm-Timings",
		"queue="+strconv.FormatInt(queueUS, 10)+
			";sim="+strconv.FormatInt(simUS, 10)+
			";persist="+strconv.FormatInt(persistUS, 10))
}

// handleBatch is the admission-batching endpoint: one POST carries a JSON
// array of RunSpecs, the specs are admitted in one pass (sharing the quota,
// fast path, and fair queue of single submissions), the sync ones are
// awaited, and one response array comes back. N logical requests cost one
// HTTP round trip and — for repeat traffic — N lock-free joins. The
// X-Getm-Shed header counts the entries shed by quota or queue pressure so
// load generators can track shed rate without parsing the body.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Baseline {
		// The control arm reproduces the pre-batching serve surface: the
		// batch endpoint is part of the throughput work under measurement.
		writeError(w, http.StatusNotFound, errors.New("batch endpoint disabled in baseline mode"))
		return
	}
	start := time.Now()
	defer func() { s.met.observeHTTP(time.Since(start)) }()
	s.met.batches.Add(1)
	var specs []RunSpec
	if err := json.NewDecoder(r.Body).Decode(&specs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(specs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(specs) > maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(specs), maxBatch))
		return
	}
	s.met.requests.Add(int64(len(specs)))
	client := s.clientKey(r)
	s.met.clientRequest(client, int64(len(specs)))
	s.span(stageReceive, client, "", uint64(len(specs)), 0)
	if s.pool.draining.Load() {
		s.met.rejected.Add(int64(len(specs)))
		s.met.clientShed(client, int64(len(specs)))
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	if s.routesRemotely(r) {
		s.cluster.forwardBatch(w, r, specs, client, start)
		return
	}

	// Admission pass: every spec gets either a jobState or an immediate
	// terminal response.
	jobs := make([]*jobState, len(specs))
	resps := make([]*Response, len(specs))
	shed := 0
	for i := range specs {
		sp := &specs[i]
		sp.normalize()
		if err := sp.validate(s.cfg.MaxScale); err != nil {
			resps[i] = &Response{Status: "invalid", Error: err.Error()}
			continue
		}
		s.met.policyRequest(sp.policyLabel(), 1)
		if s.quotas != nil {
			if ok, _ := s.quotas.allow(client, time.Now()); !ok {
				s.met.rejected.Add(1)
				s.met.quotaRejected.Add(1)
				s.met.clientShed(client, 1)
				s.span(stageQuota, client, "", 0, 0)
				resps[i] = &Response{Status: "shed", Error: "over per-client quota"}
				shed++
				continue
			}
		}
		if js, ok := s.fastJoin(sp); ok {
			s.met.deduped.Add(1)
			s.span(stageJoin, client, js.id, 0, 0)
			jobs[i] = js
			continue
		}
		js, outcome := s.pool.admit(*sp, client)
		switch outcome {
		case admitOK:
			jobs[i] = js
		case admitDraining:
			s.met.rejected.Add(1)
			s.met.clientShed(client, 1)
			resps[i] = &Response{Status: "shed", Error: "server is draining"}
			shed++
		default: // admitFull, admitClientFull
			s.met.rejected.Add(1)
			s.met.clientShed(client, 1)
			resps[i] = &Response{Status: "shed", Error: "queue full"}
			shed++
		}
	}

	// Wait pass: sync entries block until their shared run completes; async
	// entries snapshot immediately.
	for i, js := range jobs {
		if js == nil || specs[i].Async {
			continue
		}
		select {
		case <-js.done:
		case <-r.Context().Done():
			return // client gone; nothing useful to write
		}
	}

	if s.spans != nil {
		// Per-stage maxima across the awaited jobs: the batch's critical
		// path, which is what the submitter actually waited on.
		var q, sim, per int64
		for i, js := range jobs {
			if js == nil || specs[i].Async {
				continue
			}
			q = max(q, js.queueUS)
			sim = max(sim, js.simUS)
			per = max(per, js.persistUS.Load())
		}
		setTimingsHeader(w.Header(), q, sim, per)
	}
	w.Header().Set("X-Getm-Shed", strconv.Itoa(shed))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Render the array splicing cached response bytes where available, so a
	// batch of repeat traffic costs memory copies, not JSON encoding.
	w.Write([]byte("["))
	for i := range specs {
		if i > 0 {
			w.Write([]byte(","))
		}
		switch {
		case resps[i] != nil:
			b, err := json.Marshal(resps[i])
			if err != nil {
				b = []byte(`{"status":"failed","error":"encode error"}`)
			}
			w.Write(b)
		case specs[i].Async:
			b, _ := json.Marshal(s.snapshot(jobs[i]))
			w.Write(b)
		default:
			w.Write(s.doneBytes(jobs[i]))
		}
	}
	w.Write([]byte("]\n"))
	s.span(stageRespond, client, "", uint64(time.Since(start).Microseconds()), uint64(len(specs)))
}

// handleStatus reports one run: live states from the job table (lock-free),
// completed unbudgeted runs durably from the store (so ids survive
// restarts), and — in a cluster — runs held by a peer. Every request-derived
// id is validated before it can reach a filesystem path: a malformed id is a
// clean 404, identical to an unknown one.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if v, ok := s.pool.jobsFast.Load(id); ok {
		js := v.(*jobState)
		select {
		case <-js.done:
			if js.err != nil {
				// The job failed, not this request.
				writeStatusJSON(w, http.StatusOK, s.snapshot(js))
				return
			}
			s.writeDone(w, js)
		default:
			writeJSON(w, s.snapshot(js))
		}
		return
	}
	base, ok := parseRunID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run id %q", id))
		return
	}
	if s.cfg.Store != nil {
		if m, ok := s.cfg.Store.Get(base); ok {
			s.met.storeStatusHits.Add(1)
			writeJSON(w, Response{ID: id, Status: statusDone.String(), Source: "store", Metrics: m})
			return
		}
	}
	if s.routesRemotely(r) && s.cluster.proxyStatus(w, r, id) {
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown run id %q", id))
}

// Timings is the JSON shape of GET /v1/runs/{id}/timings: the per-stage
// wall-clock breakdown of one run this process executed. Stage timings live
// on the in-memory jobState, so ids served purely from the durable store 404
// here — the store holds results, not request histories.
type Timings struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Source    string `json:"source,omitempty"`
	QueueUS   int64  `json:"queue_us"`
	SimUS     int64  `json:"sim_us"`
	PersistUS int64  `json:"persist_us"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// handleTimings reports the per-stage breakdown for a run held in the job
// table. Pending runs report the stages reached so far (zeroes beyond).
func (s *Server) handleTimings(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	js, ok := s.pool.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no stage timings for run id %q (not executed by this process)", id))
		return
	}
	t := Timings{ID: js.id, Status: js.getStatus().String(), PersistUS: js.persistUS.Load()}
	select {
	case <-js.done:
		t.Status = statusDone.String()
		if js.err != nil {
			t.Status = statusFailed.String()
		}
		t.Source = js.source
		t.QueueUS, t.SimUS, t.ElapsedMS = js.queueUS, js.simUS, js.elapsedMS
	default:
	}
	writeJSON(w, t)
}

// handleSpans exports the lifecycle span ring — plus the retained sim
// recorders — in the trace layer's format set (?format=perfetto|csv|text,
// default perfetto). 404 unless the server runs with spans enabled.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.spans == nil {
		writeError(w, http.StatusNotFound, errors.New("spans disabled (start the server with -spans)"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "perfetto"
	}
	var err error
	switch format {
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		err = s.writeSpansPerfetto(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		err = s.writeSpansCSV(w)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		err = s.writeSpansText(w)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want perfetto, csv, or text)", format))
		return
	}
	if err != nil {
		s.log("spans export: " + err.Error())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz flips to 503 when the queue has no headroom or the server is
// draining — the signal a load balancer uses to steer traffic away before
// requests start bouncing off 429s. The X-Getm-Headroom header carries the
// live queue headroom (slots left before shedding; 0 while draining) so a
// cluster coordinator can grade peers instead of just bisecting ready/not.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	draining := s.pool.draining.Load()
	headroom := s.pool.fq.capacity - s.pool.fq.len()
	if draining || headroom < 0 {
		headroom = 0
	}
	w.Header().Set(headerHeadroom, strconv.Itoa(headroom))
	switch {
	case draining:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case headroom == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// handleStoreRecord serves the raw, self-verifying record file for one store
// key — the cluster's store-sync source. Strictly local (Store.ReadRaw never
// consults the peer-fill path), so two nodes fetching from each other cannot
// recurse; a malformed key or absent record is a 404.
func (s *Server) handleStoreRecord(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, errors.New("no store configured"))
		return
	}
	raw, ok := s.cfg.Store.ReadRaw(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record for key %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w, s)
}

// snapshot renders a job's current state (done fields are stable after the
// close; pending states read the atomic status).
func (s *Server) snapshot(js *jobState) Response {
	select {
	case <-js.done:
		resp := Response{ID: js.id, Status: statusDone.String(), Source: js.source, ElapsedMS: js.elapsedMS}
		if js.err != nil {
			resp.Status = statusFailed.String()
			resp.Error = js.err.Error()
		}
		if js.m != nil {
			resp.Metrics = js.m
			resp.Truncated = js.m.Truncated
		}
		return resp
	default:
		return Response{ID: js.id, Status: js.getStatus().String()}
	}
}

// doneBytes returns the rendered JSON for a successfully completed job,
// encoding it exactly once per job (repeat traffic gets the cached bytes).
// Baseline mode re-encodes every time — the per-request cost the cache
// exists to remove.
func (s *Server) doneBytes(js *jobState) []byte {
	if !s.cfg.Baseline {
		if bp := js.rendered.Load(); bp != nil {
			return *bp
		}
	}
	resp := s.snapshot(js)
	b, err := json.Marshal(resp)
	if err != nil {
		return []byte(`{"status":"failed","error":"encode error"}`)
	}
	if !s.cfg.Baseline && js.err == nil {
		js.rendered.Store(&b)
	}
	return b
}

// writeDone writes a completed successful run: cached bytes when available.
func (s *Server) writeDone(w http.ResponseWriter, js *jobState) {
	b := s.doneBytes(js)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	w.Write([]byte("\n"))
}

// retryAfterSeconds estimates when a queue slot will free up: the drain time
// of the work actually waiting right now, at the recent mean latency. Live
// occupancy, not cfg.QueueDepth — a request shed by the per-client cap while
// the shared queue sits nearly empty should come back after the real backlog
// drains, not after a hypothetical full queue's worth. The result is clamped
// to at least one second — sub-second mean latencies must never produce
// "Retry-After: 0", which clients read as "retry immediately".
func (s *Server) retryAfterSeconds() int {
	meanMS := s.met.meanLatencyMS()
	if meanMS <= 0 {
		return 1
	}
	waiting := s.pool.fq.len() + 1 // +1: the slot this request would need
	return retryAfterSecs(time.Duration(float64(waiting) * meanMS / float64(s.cfg.Workers) * float64(time.Millisecond)))
}

// httpStatusFor maps a run error to a response code: a deadline/cancel is
// the request's fault (408), everything else a simulation failure (500).
func httpStatusFor(err error) int {
	if errors.Is(err, gpu.ErrCanceled) {
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, v any) {
	writeStatusJSON(w, http.StatusOK, v)
}

func writeStatusJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeStatusJSON(w, code, map[string]string{"error": err.Error()})
}
