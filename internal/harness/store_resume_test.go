package harness

// Tests for the runner's durable second tier: store round-trips through real
// report rendering, corrupt records silently recomputing, and the headline
// resume guarantee — a killed-then-resumed run simulates only the missing
// cells and produces byte-identical reports.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync/atomic"
	"testing"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/store"
)

// richStub installs a deterministic fake simulator whose metrics exercise
// every field shape reports consume — scalars, causes, histograms, float
// accumulators — derived purely from (job, scale, seed) so two runners
// always agree.
func richStub(r *Runner) *atomic.Int64 {
	var runs atomic.Int64
	r.simulate = func(_ context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		runs.Add(1)
		h := fnv.New64a()
		fmt.Fprintf(h, "%s|%g|%d", j.key(), scale, seed)
		v := h.Sum64()
		m := stats.NewMetrics()
		m.TotalCycles = 1000 + v%100000
		m.TxExecCycles = v % 5000
		m.TxWaitCycles = v % 3000
		m.Commits = 100 + v%900
		m.Aborts = v % 100
		m.AbortsByCause.Inc("war", m.Aborts/2)
		m.AbortsByCause.Inc("waw-raw", m.Aborts-m.Aborts/2)
		m.XbarUpBytes = 1 + v%(1<<20)
		m.XbarDownBytes = 1 + (v>>7)%(1<<20)
		m.MetaAccessCycles.Add(int(v % 7))
		m.MetaAccessCycles.Add(int(v % 13))
		m.StallBufMaxOccupancy = v % 12
		m.StallBufPerAddr.Add(float64(v%97) / 7) // non-terminating binary fraction
		m.Extra.Inc("llc-hits", v%4096)
		return m, nil
	}
	return &runs
}

func storeRunner(t *testing.T, dir string, scale float64, reuse bool) (*Runner, *atomic.Int64) {
	t.Helper()
	r := NewRunner(scale)
	r.Store = store.Open(dir)
	if err := r.Store.Degraded(); err != nil {
		t.Fatal(err)
	}
	r.StoreReuse = reuse
	runs := richStub(r)
	return r, runs
}

// A second process over a warm store must simulate nothing; with reuse
// disabled it must trust nothing.
func TestRunnerStoreTier(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{
		{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4},
		{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 8},
		{Proto: gpu.ProtoWarpTM, Bench: "atm", Conc: 2},
	}

	r1, _ := storeRunner(t, dir, 0.1, true)
	for _, j := range jobs {
		if _, err := r1.RunE(j); err != nil {
			t.Fatal(err)
		}
	}
	if r1.Simulated() != len(jobs) || r1.StoreHits() != 0 {
		t.Fatalf("cold run: simulated %d / store hits %d, want %d / 0",
			r1.Simulated(), r1.StoreHits(), len(jobs))
	}

	r2, _ := storeRunner(t, dir, 0.1, true)
	var fresh, warm []*stats.Metrics
	for _, j := range jobs {
		m1, _ := r1.RunE(j) // memory hit
		m2, err := r2.RunE(j)
		if err != nil {
			t.Fatal(err)
		}
		fresh, warm = append(fresh, m1), append(warm, m2)
	}
	if r2.Simulated() != 0 || r2.StoreHits() != len(jobs) {
		t.Fatalf("warm run: simulated %d / store hits %d, want 0 / %d",
			r2.Simulated(), r2.StoreHits(), len(jobs))
	}
	for i := range fresh {
		if fresh[i].TotalCycles != warm[i].TotalCycles || fresh[i].XbarBytes() != warm[i].XbarBytes() {
			t.Fatalf("job %d: store round trip changed metrics", i)
		}
	}

	// Same store, reuse disabled: everything re-simulates.
	r3, _ := storeRunner(t, dir, 0.1, false)
	for _, j := range jobs {
		if _, err := r3.RunE(j); err != nil {
			t.Fatal(err)
		}
	}
	if r3.Simulated() != len(jobs) || r3.StoreHits() != 0 {
		t.Fatalf("no-reuse run: simulated %d / store hits %d, want %d / 0",
			r3.Simulated(), r3.StoreHits(), len(jobs))
	}

	// Different scale must never hit the other scale's records.
	r4, _ := storeRunner(t, dir, 0.2, true)
	if _, err := r4.RunE(jobs[0]); err != nil {
		t.Fatal(err)
	}
	if r4.StoreHits() != 0 {
		t.Fatal("a different scale was served another scale's record")
	}
}

// A record corrupted on disk must be silently recomputed and repaired.
func TestRunnerStoreCorruptRecomputed(t *testing.T) {
	dir := t.TempDir()
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}

	r1, _ := storeRunner(t, dir, 0.1, true)
	want, err := r1.RunE(j)
	if err != nil {
		t.Fatal(err)
	}

	path := r1.Store.Dir() + "/" + r1.storeKey(j) + ".json"
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, _ := storeRunner(t, dir, 0.1, true)
	got, err := r2.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Simulated() != 1 || r2.StoreHits() != 0 {
		t.Fatalf("corrupt record: simulated %d / hits %d, want 1 / 0 (recompute)",
			r2.Simulated(), r2.StoreHits())
	}
	if got.TotalCycles != want.TotalCycles {
		t.Fatal("recomputed metrics differ from the original run")
	}

	// The recompute repaired the record: a third process hits it.
	r3, _ := storeRunner(t, dir, 0.1, true)
	if _, err := r3.RunE(j); err != nil {
		t.Fatal(err)
	}
	if r3.StoreHits() != 1 {
		t.Fatal("recomputed record was not persisted back")
	}
}

// The headline resume guarantee: kill a grid run mid-way, resume against the
// same store, and (a) only the missing cells simulate, (b) the rendered
// report is byte-identical to an uninterrupted run's.
func TestResumeByteIdentical(t *testing.T) {
	render := func(r *Runner) string {
		out := ""
		for _, id := range []string{"fig12", "fig13", "fig16"} {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			out += e.Run(r).String()
		}
		return out
	}

	// Reference: uninterrupted, storeless run.
	rFull := NewRunner(0.1)
	fullRuns := richStub(rFull)
	want := render(rFull)
	total := int(fullRuns.Load())
	if total == 0 {
		t.Fatal("reference run simulated nothing")
	}

	// "Killed" run: persist only a strict subset of the grid.
	dir := t.TempDir()
	rPart, _ := storeRunner(t, dir, 0.1, true)
	prefill := []Job{}
	for _, b := range Benchmarks() {
		prefill = append(prefill,
			Job{Proto: gpu.ProtoGETM, Bench: b, Conc: 1},
			Job{Proto: gpu.ProtoGETM, Bench: b, Conc: 2},
			Job{Proto: gpu.ProtoWarpTM, Bench: b, Conc: 1})
	}
	for _, j := range prefill {
		if _, err := rPart.RunE(j); err != nil {
			t.Fatal(err)
		}
	}
	done := rPart.Simulated()
	if done >= total {
		t.Fatalf("prefill (%d) must be a strict subset of the grid (%d)", done, total)
	}

	// Resumed process: fresh memory, same store.
	rResume, _ := storeRunner(t, dir, 0.1, true)
	got := render(rResume)
	if got != want {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if rResume.Simulated() != total-done {
		t.Fatalf("resumed run simulated %d cells, want exactly the %d missing (grid %d, done %d)",
			rResume.Simulated(), total-done, total, done)
	}
	if rResume.StoreHits() != done {
		t.Fatalf("resumed run hit %d stored cells, want %d", rResume.StoreHits(), done)
	}
}

// Cancellation must propagate out of RunE without poisoning either cache
// tier: a retry actually re-runs the job.
func TestRunnerCanceledNotCached(t *testing.T) {
	r := NewRunner(0.1)
	r.Store = store.Open(t.TempDir())
	r.StoreReuse = true
	var runs atomic.Int64
	fail := true
	r.simulate = func(_ context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		runs.Add(1)
		if fail {
			return nil, fmt.Errorf("kernel canceled at cycle 42: %w", gpu.ErrCanceled)
		}
		return stats.NewMetrics(), nil
	}

	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}
	if _, err := r.RunE(j); !errors.Is(err, gpu.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if err := r.Err(); !errors.Is(err, gpu.ErrCanceled) {
		t.Fatalf("Err() = %v, want to surface the cancellation", err)
	}
	if r.cached(j.key()) {
		t.Fatal("canceled run entered a cache tier")
	}
	if keys, _ := r.Store.Keys(); len(keys) != 0 {
		t.Fatal("canceled run persisted a record")
	}

	// With the cancellation gone, the same key must genuinely re-run.
	fail = false
	if _, err := r.RunE(j); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("job ran %d times, want 2 (cancel must not cache)", runs.Load())
	}
}

// A degraded (unwritable) store must not break the runner: everything
// simulates and nothing is persisted.
func TestRunnerStoreDegraded(t *testing.T) {
	file := t.TempDir() + "/plain-file"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(0.1)
	r.Store = store.Open(file + "/sub")
	r.StoreReuse = true
	runs := richStub(r)

	if _, err := r.RunE(Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 || r.StoreHits() != 0 {
		t.Fatalf("degraded store: runs %d, hits %d, want 1, 0", runs.Load(), r.StoreHits())
	}
}
