package harness

import (
	"sync"
	"testing"

	"getm/internal/gpu"
	"getm/internal/trace"
)

func TestPrecomputeMatchesSequential(t *testing.T) {
	seq := NewRunner(0.03)
	par := NewRunner(0.03)
	if err := Precompute(par, 4); err != nil {
		t.Fatal(err)
	}

	// Every standard-grid job must be cached and identical to a fresh
	// sequential run.
	for _, b := range []string{"ht-h", "atm"} {
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoGETM} {
			for _, c := range []int{1, 8} {
				j := Job{Proto: p, Bench: b, Conc: c}
				if !par.cached(j.key()) {
					t.Fatalf("job %s not precomputed", j.key())
				}
				a := seq.Run(j)
				bm := par.Run(j)
				if a.TotalCycles != bm.TotalCycles || a.Commits != bm.Commits || a.Aborts != bm.Aborts {
					t.Fatalf("parallel result differs for %s: (%d,%d,%d) vs (%d,%d,%d)",
						j.key(), a.TotalCycles, a.Commits, a.Aborts,
						bm.TotalCycles, bm.Commits, bm.Aborts)
				}
			}
		}
	}
}

func TestPrecomputeIdempotent(t *testing.T) {
	r := NewRunner(0.03)
	if err := Precompute(r, 2); err != nil {
		t.Fatal(err)
	}
	n := r.cacheSize()
	if err := Precompute(r, 2); err != nil {
		t.Fatal(err)
	}
	if r.cacheSize() != n {
		t.Fatalf("second precompute grew the cache: %d -> %d", n, r.cacheSize())
	}
}

// The Progress hook fires once per completed job with a dense 1..total
// sequence per parallel batch (any order of observation within a batch, but
// every value exactly once) — the contract a CLI progress/ETA line depends
// on. Precompute issues two waves, so the ticks arrive as consecutive
// complete batches.
func TestPrecomputeProgress(t *testing.T) {
	r := NewRunner(0.03)
	type tick struct{ done, total int }
	var mu sync.Mutex
	var ticks []tick
	r.Progress = func(done, tot int) {
		mu.Lock()
		ticks = append(ticks, tick{done, tot})
		mu.Unlock()
	}
	if err := Precompute(r, 4); err != nil {
		t.Fatal(err)
	}
	if len(ticks) == 0 {
		t.Fatal("progress never fired")
	}
	// Batches run sequentially, so arrival order is batch 1's ticks (in any
	// order) followed by batch 2's; each segment of `total` ticks must be a
	// permutation of 1..total.
	for i := 0; i < len(ticks); {
		total := ticks[i].total
		if total <= 0 || i+total > len(ticks) {
			t.Fatalf("tick %d: batch total %d does not fit %d remaining ticks", i, total, len(ticks)-i)
		}
		seen := map[int]bool{}
		for _, tk := range ticks[i : i+total] {
			if tk.total != total {
				t.Fatalf("total changed mid-batch: %d -> %d", total, tk.total)
			}
			if tk.done < 1 || tk.done > total || seen[tk.done] {
				t.Fatalf("batch of %d: bad or duplicated done=%d", total, tk.done)
			}
			seen[tk.done] = true
		}
		i += total
	}
}

// A runner with Trace set hands each executed job's recorder to TraceSink,
// and the traced metrics are identical to an untraced run of the same job —
// the PR 3 discipline, preserved through the harness path.
func TestRunnerTraceSink(t *testing.T) {
	plain := NewRunner(0.02)
	traced := NewRunner(0.02)
	traced.Trace = &trace.Options{RingSize: 1 << 10}
	var mu sync.Mutex
	recs := map[string]*trace.Recorder{}
	traced.TraceSink = func(key string, rec *trace.Recorder) {
		mu.Lock()
		recs[key] = rec
		mu.Unlock()
	}

	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 8}
	a, err := traced.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plain.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Commits != b.Commits || a.Aborts != b.Aborts {
		t.Fatalf("traced run diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.TotalCycles, a.Commits, a.Aborts, b.TotalCycles, b.Commits, b.Aborts)
	}
	if len(recs) != 1 {
		t.Fatalf("TraceSink fired %d times, want 1", len(recs))
	}
	for key, rec := range recs {
		if rec == nil {
			t.Fatalf("nil recorder for %s", key)
		}
		if key != traced.storeKey(j) {
			t.Fatalf("sink key %q, want %q", key, traced.storeKey(j))
		}
	}

	// The memoized repeat must not re-fire the sink.
	if _, err := traced.RunE(j); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("cached repeat re-fired TraceSink (%d records)", len(recs))
	}
}
