package harness

import (
	"testing"

	"getm/internal/gpu"
)

func TestPrecomputeMatchesSequential(t *testing.T) {
	seq := NewRunner(0.03)
	par := NewRunner(0.03)
	if err := Precompute(par, 4); err != nil {
		t.Fatal(err)
	}

	// Every standard-grid job must be cached and identical to a fresh
	// sequential run.
	for _, b := range []string{"ht-h", "atm"} {
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoGETM} {
			for _, c := range []int{1, 8} {
				j := Job{Proto: p, Bench: b, Conc: c}
				if !par.cached(j.key()) {
					t.Fatalf("job %s not precomputed", j.key())
				}
				a := seq.Run(j)
				bm := par.Run(j)
				if a.TotalCycles != bm.TotalCycles || a.Commits != bm.Commits || a.Aborts != bm.Aborts {
					t.Fatalf("parallel result differs for %s: (%d,%d,%d) vs (%d,%d,%d)",
						j.key(), a.TotalCycles, a.Commits, a.Aborts,
						bm.TotalCycles, bm.Commits, bm.Aborts)
				}
			}
		}
	}
}

func TestPrecomputeIdempotent(t *testing.T) {
	r := NewRunner(0.03)
	if err := Precompute(r, 2); err != nil {
		t.Fatal(err)
	}
	n := r.cacheSize()
	if err := Precompute(r, 2); err != nil {
		t.Fatal(err)
	}
	if r.cacheSize() != n {
		t.Fatalf("second precompute grew the cache: %d -> %d", n, r.cacheSize())
	}
}
