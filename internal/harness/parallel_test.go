package harness

import (
	"testing"

	"getm/internal/gpu"
)

func TestPrecomputeMatchesSequential(t *testing.T) {
	seq := NewRunner(0.03)
	par := NewRunner(0.03)
	Precompute(par, 4)

	// Every standard-grid job must be cached and identical to a fresh
	// sequential run.
	for _, b := range []string{"ht-h", "atm"} {
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoGETM} {
			for _, c := range []int{1, 8} {
				j := Job{Proto: p, Bench: b, Conc: c}
				if _, ok := par.cache[j.key()]; !ok {
					t.Fatalf("job %s not precomputed", j.key())
				}
				a := seq.Run(j)
				bm := par.Run(j)
				if a.TotalCycles != bm.TotalCycles || a.Commits != bm.Commits || a.Aborts != bm.Aborts {
					t.Fatalf("parallel result differs for %s: (%d,%d,%d) vs (%d,%d,%d)",
						j.key(), a.TotalCycles, a.Commits, a.Aborts,
						bm.TotalCycles, bm.Commits, bm.Aborts)
				}
			}
		}
	}
}

func TestPrecomputeIdempotent(t *testing.T) {
	r := NewRunner(0.03)
	Precompute(r, 2)
	n := len(r.cache)
	Precompute(r, 2)
	if len(r.cache) != n {
		t.Fatalf("second precompute grew the cache: %d -> %d", n, len(r.cache))
	}
}
