package harness

// Concurrency tests for the thread-safe runner. These are the regression
// suite for the data races the original runner had (unsynchronized cache and
// optC access, duplicate in-batch jobs, worker panics) and are meant to run
// under -race — `make check` enforces that.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"getm/internal/gpu"
	"getm/internal/stats"
)

// countingStub installs a fake simulator that counts executions per job key
// and returns distinguishable metrics without running the GPU model.
func countingStub(r *Runner) *sync.Map {
	var counts sync.Map
	r.simulate = func(_ context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		c, _ := counts.LoadOrStore(j.key(), new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		return &stats.Metrics{TotalCycles: uint64(100 + j.Conc)}, nil
	}
	return &counts
}

// TestRunConcurrentHammer calls Run, RunE, RunOptimal, and OptimalConc from
// many goroutines over an overlapping job set; under -race this flushes out
// any unsynchronized access to the runner's maps, and the counting stub
// proves each unique key simulated exactly once despite the contention.
func TestRunConcurrentHammer(t *testing.T) {
	r := NewRunner(0.03)
	counts := countingStub(r)

	const goroutines = 16 // acceptance floor is 8; hammer harder
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				b := Benchmarks()[(g+i)%len(Benchmarks())]
				switch i % 4 {
				case 0:
					r.Run(Job{Proto: gpu.ProtoGETM, Bench: b, Conc: ConcLevels[i%len(ConcLevels)]})
				case 1:
					if _, err := r.RunE(Job{Proto: gpu.ProtoWarpTM, Bench: b, Conc: 8}); err != nil {
						t.Error(err)
					}
				case 2:
					r.OptimalConc(gpu.ProtoGETM, b)
				case 3:
					r.RunOptimal(gpu.ProtoWarpTM, b)
				}
			}
		}()
	}
	wg.Wait()

	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	counts.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("job %v simulated %d times, want exactly 1", k, n)
		}
		return true
	})
}

// TestRunParallelDedupesBatch feeds runParallel a batch full of key
// duplicates — including override values equal to the defaults, which
// produce the same key as the plain job — and checks exactly-once execution.
func TestRunParallelDedupesBatch(t *testing.T) {
	r := NewRunner(0.03)
	counts := countingStub(r)

	base := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}
	jobs := []Job{base, base, base,
		{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4, MetaEntries: 0, Granularity: 0},
		{Proto: gpu.ProtoWarpTM, Bench: "atm", Conc: 2},
		{Proto: gpu.ProtoWarpTM, Bench: "atm", Conc: 2},
	}
	if err := r.runParallel(jobs, 4); err != nil {
		t.Fatal(err)
	}
	total := 0
	counts.Range(func(k, v any) bool {
		n := int(v.(*atomic.Int64).Load())
		if n != 1 {
			t.Errorf("job %v simulated %d times, want exactly 1", k, n)
		}
		total += n
		return true
	})
	if total != 2 {
		t.Fatalf("batch executed %d unique jobs, want 2", total)
	}

	// A second batch over the same keys must be a pure cache hit.
	if err := r.runParallel(jobs, 4); err != nil {
		t.Fatal(err)
	}
	counts.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n != 1 {
			t.Errorf("job %v re-simulated after caching (%d runs)", k, n)
		}
		return true
	})
}

// TestRunSurfacesErrors verifies that a failing simulation no longer kills
// the process: RunE returns the error, Run degrades to zero metrics, the
// error is aggregated on the runner, healthy jobs in the same parallel batch
// still complete, and the deterministic failure is cached rather than
// re-executed.
func TestRunSurfacesErrors(t *testing.T) {
	r := NewRunner(0.03)
	boom := errors.New("boom")
	var failRuns atomic.Int64
	r.simulate = func(_ context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		if j.Bench == "atm" {
			failRuns.Add(1)
			return nil, boom
		}
		return &stats.Metrics{TotalCycles: 1}, nil
	}

	bad := Job{Proto: gpu.ProtoGETM, Bench: "atm", Conc: 4}
	good := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}

	if err := r.runParallel([]Job{bad, good}, 2); !errors.Is(err, boom) {
		t.Fatalf("runParallel error = %v, want wrapped boom", err)
	}
	if !r.cached(good.key()) {
		t.Fatal("healthy job did not complete alongside the failing one")
	}

	if _, err := r.RunE(bad); !errors.Is(err, boom) {
		t.Fatalf("RunE error = %v, want wrapped boom", err)
	} else if !strings.Contains(err.Error(), bad.key()) {
		t.Fatalf("error %q does not identify the failing job", err)
	}
	if m := r.Run(bad); m == nil || m.TotalCycles != 0 {
		t.Fatalf("Run on failing job = %+v, want zero metrics", m)
	}
	if err := r.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want aggregate containing boom", err)
	}
	if n := failRuns.Load(); n != 1 {
		t.Fatalf("failing job executed %d times, want 1 (errors are cached)", n)
	}
}

// TestInflightSharing checks the singleflight path directly: two goroutines
// requesting the same slow job must receive the identical *Metrics pointer
// from one execution.
func TestInflightSharing(t *testing.T) {
	r := NewRunner(0.03)
	started := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64
	r.simulate = func(_ context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		runs.Add(1)
		close(started)
		<-release
		return &stats.Metrics{TotalCycles: 7}, nil
	}

	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 2}
	results := make(chan *stats.Metrics, 2)
	go func() { results <- r.Run(j) }()
	<-started // first caller is mid-simulation
	go func() { results <- r.Run(j) }()
	close(release)
	a, b := <-results, <-results
	if a != b {
		t.Fatal("concurrent callers got different metrics objects")
	}
	if runs.Load() != 1 {
		t.Fatalf("slow job ran %d times, want 1", runs.Load())
	}
	if fmt.Sprint(a.TotalCycles) != "7" {
		t.Fatalf("unexpected metrics: %+v", a)
	}
}
