package harness

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/store"
)

// A per-call context cancellation is returned to its caller but not recorded
// in Err — a long-lived server timing out requests must not accumulate an
// unbounded error log — and the job stays uncached so a retry re-runs it.
func TestRunECtxPerCallCancelNotRecorded(t *testing.T) {
	r := NewRunner(0.1)
	var runs atomic.Int64
	r.simulate = func(ctx context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		runs.Add(1)
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("canceled: %w", errors.Join(gpu.ErrCanceled, context.Cause(ctx)))
		case <-time.After(10 * time.Second):
			return stats.NewMetrics(), nil
		}
	}
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 2}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunECtx(ctx, j); !errors.Is(err, gpu.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("per-call cancellation leaked into Err: %v", err)
	}
	if r.cached(j.key()) {
		t.Fatal("canceled run entered the cache")
	}

	// A retry with a live context genuinely re-runs (and here: succeeds fast).
	r.simulate = func(context.Context, Job, float64, uint64) (*stats.Metrics, error) {
		runs.Add(1)
		return stats.NewMetrics(), nil
	}
	if _, err := r.RunECtx(context.Background(), j); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("simulate ran %d times, want 2", got)
	}
}

// A caller joining an in-flight simulation stops waiting when its own
// context fires; the shared simulation keeps running and its result still
// lands in the cache for everyone else.
func TestRunECtxJoinerStopsWaiting(t *testing.T) {
	r := NewRunner(0.1)
	release := make(chan struct{})
	entered := make(chan struct{})
	r.simulate = func(ctx context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
		close(entered)
		<-release
		m := stats.NewMetrics()
		m.TotalCycles = 777
		return m, nil
	}
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}

	first := make(chan error, 1)
	go func() {
		_, err := r.RunECtx(context.Background(), j)
		first <- err
	}()
	<-entered
	if got := r.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1", got)
	}

	// Second caller with an expired deadline: must return promptly, not
	// block until the executor finishes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := r.RunECtx(ctx, j)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, gpu.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("joiner err = %v, want ErrCanceled+context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joiner with dead context blocked on the in-flight run")
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("executor failed: %v", err)
	}
	if m, ok := r.Lookup(j); !ok || m.TotalCycles != 777 {
		t.Fatalf("executor result not cached: %v %v", m, ok)
	}
	if got := r.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after completion, want 0", got)
	}
}

// Lookup probes both tiers without simulating: memory first, then the store,
// promoting disk hits into memory.
func TestLookupNeverSimulates(t *testing.T) {
	dir := t.TempDir()
	seedStore := func() *Runner {
		r := NewRunner(0.1)
		r.Store = store.Open(dir)
		r.StoreReuse = true
		return r
	}

	r1 := seedStore()
	var runs atomic.Int64
	r1.simulate = func(context.Context, Job, float64, uint64) (*stats.Metrics, error) {
		runs.Add(1)
		m := stats.NewMetrics()
		m.TotalCycles = 42
		return m, nil
	}
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 8}
	if _, ok := r1.Lookup(j); ok {
		t.Fatal("Lookup hit on an empty runner")
	}
	if _, err := r1.RunE(j); err != nil {
		t.Fatal(err)
	}
	if m, ok := r1.Lookup(j); !ok || m.TotalCycles != 42 {
		t.Fatalf("memory-tier Lookup = %v %v", m, ok)
	}
	if runs.Load() != 1 {
		t.Fatalf("simulate ran %d times, want 1", runs.Load())
	}

	// A fresh process sharing the directory sees the result via Lookup alone.
	r2 := seedStore()
	r2.simulate = func(context.Context, Job, float64, uint64) (*stats.Metrics, error) {
		t.Error("Lookup triggered a simulation")
		return stats.NewMetrics(), nil
	}
	if m, ok := r2.Lookup(j); !ok || m.TotalCycles != 42 {
		t.Fatalf("disk-tier Lookup = %v %v", m, ok)
	}
	if got := r2.StoreHits(); got != 1 {
		t.Fatalf("StoreHits = %d, want 1", got)
	}
	if m, ok := r2.Lookup(j); !ok || m.TotalCycles != 42 {
		t.Fatalf("promoted Lookup = %v %v", m, ok)
	}
	if got := r2.StoreHits(); got != 1 {
		t.Fatalf("StoreHits after promotion = %d, want 1 (memory tier hit)", got)
	}
	if got := r2.Simulated(); got != 0 {
		t.Fatalf("Simulated = %d, want 0", got)
	}
}

// A budgeted run cut short returns partial metrics to its caller but enters
// neither cache tier: the cell has no complete result yet.
func TestTruncatedResultNotCached(t *testing.T) {
	r := NewRunner(0.1)
	r.Store = store.Open(t.TempDir())
	r.StoreReuse = true
	var runs atomic.Int64
	r.simulate = func(context.Context, Job, float64, uint64) (*stats.Metrics, error) {
		runs.Add(1)
		m := stats.NewMetrics()
		m.TotalCycles = 1000
		m.Truncated = true
		return m, nil
	}
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4, CycleBudget: 1000}

	m, err := r.RunE(j)
	if err != nil || m == nil || !m.Truncated {
		t.Fatalf("RunE = %v, %v; want truncated metrics", m, err)
	}
	if r.cached(j.key()) {
		t.Fatal("truncated result entered the memory cache")
	}
	if keys, _ := r.Store.Keys(); len(keys) != 0 {
		t.Fatal("truncated result persisted a record")
	}
	if _, err := r.RunE(j); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("simulate ran %d times, want 2 (no caching of partial results)", got)
	}
	if got := r.Simulated(); got != 2 {
		t.Fatalf("Simulated = %d, want 2", got)
	}
}

// The cycle budget is part of the in-memory identity (a budgeted and an
// unbudgeted request are different asks) but not of the on-disk one: a
// stored complete result satisfies a budgeted request at disk-read cost.
func TestBudgetedJobKeying(t *testing.T) {
	full := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 4}
	budgeted := full
	budgeted.CycleBudget = 5000
	if full.key() == budgeted.key() {
		t.Fatal("budget not part of the in-memory key")
	}
	r := NewRunner(0.1)
	if r.storeKey(full) != r.storeKey(budgeted) {
		t.Fatal("budget leaked into the store key: a complete record would not satisfy a budgeted request")
	}
	if cfg := budgeted.config(); uint64(cfg.CycleBudget) != 5000 {
		t.Fatalf("config.CycleBudget = %d, want 5000", cfg.CycleBudget)
	}
}
