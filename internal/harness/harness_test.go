package harness

import (
	"strings"
	"testing"

	"getm/internal/gpu"
	"getm/internal/report"
)

// tiny returns a runner at a very small scale for fast tests.
func tiny() *Runner { return NewRunner(0.03) }

func TestRunnerCaches(t *testing.T) {
	r := tiny()
	j := Job{Proto: gpu.ProtoGETM, Bench: "atm", Conc: 4}
	m1 := r.Run(j)
	m2 := r.Run(j)
	if m1 != m2 {
		t.Fatal("identical jobs not cached")
	}
}

func TestOptimalConcSearch(t *testing.T) {
	r := tiny()
	c := r.OptimalConc(gpu.ProtoWarpTM, "ht-h")
	found := false
	for _, lvl := range ConcLevels {
		if c == lvl {
			found = true
		}
	}
	if !found {
		t.Fatalf("optimal conc %d not in levels", c)
	}
	// The optimum must actually be minimal among the measured levels.
	best := r.Run(Job{Proto: gpu.ProtoWarpTM, Bench: "ht-h", Conc: c}).TotalCycles
	for _, lvl := range ConcLevels {
		if m := r.Run(Job{Proto: gpu.ProtoWarpTM, Bench: "ht-h", Conc: lvl}); m.TotalCycles < best {
			t.Fatalf("conc %d beats reported optimum %d", lvl, c)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"fig3", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "table4", "table5"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestTable5Renders(t *testing.T) {
	rep := Table5(tiny())
	s := rep.String()
	for _, want := range []string{"total WarpTM", "total GETM", "lower area"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table5 output missing %q", want)
		}
	}
}

func TestFig13ReportsPerBenchmark(t *testing.T) {
	rep := Fig13(tiny())
	// 9 benchmarks + avg row.
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 10 {
		t.Fatalf("fig13 shape: %d tables", len(rep.Tables))
	}
}

func TestFig3Structure(t *testing.T) {
	rep := Fig3(tiny())
	var series int
	for _, row := range rep.Tables[0].Rows {
		if strings.HasPrefix(row[0].String(), "tx ") {
			series++
		}
	}
	if series != 6 { // {exec,wait,total} x {WTM, WTM-EL}
		t.Fatalf("fig3 series = %d, want 6", series)
	}
}

func TestFig11HasGmean(t *testing.T) {
	rep := Fig11(tiny())
	found := false
	for _, row := range rep.Tables[0].Rows {
		if row[0].String() == "gmean" {
			found = true
		}
	}
	if !found {
		t.Fatal("fig11 missing gmean row")
	}
}

func TestReportRendersAllFormats(t *testing.T) {
	rep := Fig13(tiny())
	if !strings.Contains(rep.Render(report.FormatCSV), "bench,avg cycles") {
		t.Fatal("csv rendering broken")
	}
	if !strings.Contains(rep.Render(report.FormatMarkdown), "| bench |") {
		t.Fatal("markdown rendering broken")
	}
}

func TestFig14HasTwoTables(t *testing.T) {
	rep := Fig14(tiny())
	if len(rep.Tables) != 2 {
		t.Fatalf("fig14 tables = %d, want 2 (size + granularity)", len(rep.Tables))
	}
}

// TestAllExperimentsRunTiny executes every registered experiment end-to-end
// at a tiny scale on one shared (cached) runner: every figure/table build
// path gets exercised, and each must yield at least one non-empty table.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run")
	}
	r := tiny()
	if err := Precompute(r, 2); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(r)
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range rep.Tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s empty", tab.ID)
				}
				if out := tab.Render(report.FormatCSV); len(out) == 0 {
					t.Fatalf("table %s renders empty", tab.ID)
				}
			}
		})
	}
}

// TestShardClassIdentity pins the cache/store identity rules for Job.Shards:
// worker count never splits a cell, but the serial and sharded semantics
// classes never share one.
func TestShardClassIdentity(t *testing.T) {
	r := tiny()
	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h", Conc: 8}
	j2, j4 := j, j
	j2.Shards, j4.Shards = 2, 4
	if j2.key() != j4.key() || r.StoreKey(j2) != r.StoreKey(j4) {
		t.Fatal("worker count leaked into cell identity: shards=2 and shards=4 must share keys")
	}
	if j.key() == j2.key() || r.StoreKey(j) == r.StoreKey(j2) {
		t.Fatal("serial and sharded cells must not share keys (their results differ)")
	}
	// Non-shardable protocol: Shards falls back to serial, so it must not
	// split the cell either.
	w := Job{Proto: gpu.ProtoWarpTM, Bench: "ht-h", Conc: 8}
	w2 := w
	w2.Shards = 2
	if w.key() != w2.key() || r.StoreKey(w) != r.StoreKey(w2) {
		t.Fatal("non-shardable cell split by Shards despite serial fallback")
	}
	// Runner-wide default applies the same class as an explicit per-job value.
	rs := tiny()
	rs.Shards = 4
	if rs.StoreKey(j) != r.StoreKey(j2) {
		t.Fatal("runner-wide Shards default keyed differently from per-job Shards")
	}
}
