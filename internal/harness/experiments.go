package harness

import (
	"fmt"

	"getm/internal/area"
	"getm/internal/gpu"
	"getm/internal/report"
)

// Fig3 reproduces the motivation study: per-transaction execution, wait, and
// total cycles for WarpTM-LL and the idealized WarpTM-EL as the per-core
// transactional-warp limit grows, on HT-H, normalized to the highest point.
func Fig3(r *Runner) *Report {
	cols := []string{"series"}
	for _, c := range ConcLevels {
		cols = append(cols, concName(c))
	}
	tab := report.NewTable("fig3", "tx cycles vs concurrency on HT-H (normalized, lower is better)", cols...)

	protos := []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoWarpTMEL}
	type row struct{ exec, wait, total float64 }
	data := map[gpu.Protocol]map[int]row{}
	var maxExec, maxWait, maxTotal float64
	for _, p := range protos {
		data[p] = map[int]row{}
		for _, c := range ConcLevels {
			m := r.Run(Job{Proto: p, Bench: "ht-h", Conc: c})
			// Per committed transaction, as the paper plots "time per
			// transaction".
			n := float64(m.Commits)
			rw := row{float64(m.TxExecCycles) / n, float64(m.TxWaitCycles) / n, float64(m.TxCycles()) / n}
			data[p][c] = rw
			maxExec = maxF(maxExec, rw.exec)
			maxWait = maxF(maxWait, rw.wait)
			maxTotal = maxF(maxTotal, rw.total)
		}
	}
	for _, metric := range []string{"exec", "wait", "total"} {
		for _, p := range protos {
			cells := []report.Cell{report.Str(fmt.Sprintf("tx %s %s", metric, shortName(p)))}
			for _, c := range ConcLevels {
				rw := data[p][c]
				v, max := rw.exec, maxExec
				switch metric {
				case "wait":
					v, max = rw.wait, maxWait
				case "total":
					v, max = rw.total, maxTotal
				}
				cells = append(cells, report.Num(v/max, 2))
			}
			tab.AddRow(cells...)
		}
	}
	tab.AddNote("paper: LL's exec and wait grow with concurrency while EL stays flat/low;")
	tab.AddNote("       LL's optimum sits at ~2 warps, EL supports much higher concurrency")
	return newReport("fig3", "WarpTM-LL vs WarpTM-EL vs concurrency", tab)
}

// Fig4 compares lazy and (idealized) eager WarpTM with the fine-grained-lock
// implementations: transactional cycles and total time normalized to FGLock,
// each at its optimal concurrency.
func Fig4(r *Runner) *Report {
	tab := report.NewTable("fig4", "WarpTM-LL vs WarpTM-EL vs FGLock (optimal concurrency)",
		"bench", "txcyc LL", "txcyc EL", "total LL/FGL", "total EL/FGL")
	ll := map[string]float64{}
	el := map[string]float64{}
	for _, b := range Benchmarks() {
		mLL := r.RunOptimal(gpu.ProtoWarpTM, b)
		mEL := r.RunOptimal(gpu.ProtoWarpTMEL, b)
		mFG := r.RunOptimal(gpu.ProtoFGLock, b)
		txNorm := float64(mEL.TxCycles()) / float64(mLL.TxCycles())
		ll[b] = float64(mLL.TotalCycles) / float64(mFG.TotalCycles)
		el[b] = float64(mEL.TotalCycles) / float64(mFG.TotalCycles)
		tab.AddRow(report.Str(b), report.Num(1.0, 2), report.Num(txNorm, 2),
			report.Num(ll[b], 2), report.Num(el[b], 2))
	}
	tab.AddRow(report.Str("gmean"), report.Str(""), report.Str(""),
		report.Num(gmeanOf(ll), 2), report.Num(gmeanOf(el), 2))
	tab.AddNote("paper: EL cuts transactional cycles substantially and narrows the gap to FGLock")
	return newReport("fig4", "Lazy vs eager WarpTM vs locks", tab)
}

// protoComparison builds a bench × {WTM, EAPG, GETM} table of metric values
// normalized to WarpTM.
func protoComparison(r *Runner, id, title string, metric func(*Runner, gpu.Protocol, string) float64) (*report.Table, map[string]float64) {
	tab := report.NewTable(id, title, "bench", "WTM", "EAPG", "GETM")
	ge := map[string]float64{}
	for _, b := range Benchmarks() {
		base := metric(r, gpu.ProtoWarpTM, b)
		e := metric(r, gpu.ProtoEAPG, b) / base
		g := metric(r, gpu.ProtoGETM, b) / base
		ge[b] = g
		tab.AddRow(report.Str(b), report.Num(1.0, 2), report.Num(e, 2), report.Num(g, 2))
	}
	tab.AddRow(report.Str("gmean"), report.Str(""), report.Str(""), report.Num(gmeanOf(ge), 2))
	return tab, ge
}

// Fig10 reports transaction-only execution+wait cycles for WarpTM, EAPG, and
// GETM, normalized to WarpTM, at per-protocol optimal concurrency.
func Fig10(r *Runner) *Report {
	tab, _ := protoComparison(r, "fig10", "tx exec+wait normalized to WarpTM (lower is better)",
		func(r *Runner, p gpu.Protocol, b string) float64 {
			return float64(r.RunOptimal(p, b).TxCycles())
		})
	tab.AddNote("paper: GETM reduces both exec and wait for most workloads")
	return newReport("fig10", "Transaction-only time", tab)
}

// Fig11 is the headline result: total execution time normalized to the
// fine-grained-lock baseline.
func Fig11(r *Runner) *Report {
	tab := report.NewTable("fig11", "total execution time normalized to FGLock (lower is better)",
		"bench", "FGLock", "WTM", "EAPG", "GETM")
	wtm := map[string]float64{}
	eapg := map[string]float64{}
	getm := map[string]float64{}
	for _, b := range Benchmarks() {
		fg := float64(r.RunOptimal(gpu.ProtoFGLock, b).TotalCycles)
		wtm[b] = float64(r.RunOptimal(gpu.ProtoWarpTM, b).TotalCycles) / fg
		eapg[b] = float64(r.RunOptimal(gpu.ProtoEAPG, b).TotalCycles) / fg
		getm[b] = float64(r.RunOptimal(gpu.ProtoGETM, b).TotalCycles) / fg
		tab.AddRow(report.Str(b), report.Num(1.0, 2), report.Num(wtm[b], 2),
			report.Num(eapg[b], 2), report.Num(getm[b], 2))
	}
	tab.AddRow(report.Str("gmean"), report.Str(""), report.Num(gmeanOf(wtm), 2),
		report.Num(gmeanOf(eapg), 2), report.Num(gmeanOf(getm), 2))
	var bestSpeedup float64
	for _, b := range Benchmarks() {
		bestSpeedup = maxF(bestSpeedup, wtm[b]/getm[b])
	}
	tab.AddNote("GETM vs WarpTM: %.2fx gmean speedup, up to %.2fx (paper: 1.2x gmean, up to 2.1x)",
		gmeanOf(wtm)/gmeanOf(getm), bestSpeedup)
	return newReport("fig11", "Total execution time", tab)
}

// Fig12 reports crossbar traffic normalized to WarpTM.
func Fig12(r *Runner) *Report {
	tab, _ := protoComparison(r, "fig12", "crossbar traffic normalized to WarpTM (lower is better)",
		func(r *Runner, p gpu.Protocol, b string) float64 {
			return float64(r.RunOptimal(p, b).XbarBytes())
		})
	tab.AddNote("paper: GETM pays a minor traffic cost (encounter-time lock acquisition)")
	return newReport("fig12", "Crossbar traffic", tab)
}

// Fig13 reports the GETM metadata table's mean access latency per request.
func Fig13(r *Runner) *Report {
	tab := report.NewTable("fig13", "GETM metadata-table mean access cycles (>= 1, lower is better)",
		"bench", "avg cycles")
	var sum float64
	for _, b := range Benchmarks() {
		m := r.RunOptimal(gpu.ProtoGETM, b)
		v := m.MetaAccessCycles.Mean()
		sum += v
		tab.AddRow(report.Str(b), report.Num(v, 3))
	}
	tab.AddRow(report.Str("avg"), report.Num(sum/float64(len(Benchmarks())), 3))
	tab.AddNote("paper: ~1.0-1.5 cycles; stash + approximate-table evictions keep inserts cheap")
	return newReport("fig13", "Metadata access latency", tab)
}

// Fig14 sweeps the GETM metadata table size (2K/4K/8K entries) and
// granularity (16/32/64/128B), reporting total time normalized to WarpTM.
func Fig14(r *Runner) *Report {
	size := report.NewTable("fig14a", "GETM sensitivity to metadata entries (normalized to WarpTM)",
		"bench", "2K", "4K", "8K")
	for _, b := range Benchmarks() {
		base := float64(r.RunOptimal(gpu.ProtoWarpTM, b).TotalCycles)
		conc := r.OptimalConc(gpu.ProtoGETM, b)
		cells := []report.Cell{report.Str(b)}
		for _, entries := range []int{2048, 4096, 8192} {
			m := r.Run(Job{Proto: gpu.ProtoGETM, Bench: b, Conc: conc, MetaEntries: entries})
			cells = append(cells, report.Num(float64(m.TotalCycles)/base, 2))
		}
		size.AddRow(cells...)
	}
	gran := report.NewTable("fig14b", "GETM sensitivity to conflict granularity (normalized to WarpTM)",
		"bench", "16B", "32B", "64B", "128B")
	for _, b := range Benchmarks() {
		base := float64(r.RunOptimal(gpu.ProtoWarpTM, b).TotalCycles)
		conc := r.OptimalConc(gpu.ProtoGETM, b)
		cells := []report.Cell{report.Str(b)}
		for _, g := range []int{16, 32, 64, 128} {
			m := r.Run(Job{Proto: gpu.ProtoGETM, Bench: b, Conc: conc, Granularity: g})
			cells = append(cells, report.Num(float64(m.TotalCycles)/base, 2))
		}
		gran.AddRow(cells...)
	}
	gran.AddNote("paper: 2K entries hurt high-parallelism workloads; finer granularity reduces")
	gran.AddNote("       false sharing but shrinks effective table coverage")
	return newReport("fig14", "Metadata sensitivity", size, gran)
}

// Fig15 reports the maximum total stall-buffer occupancy.
func Fig15(r *Runner) *Report {
	tab := report.NewTable("fig15", "max addresses queued across all stall buffers (paper: never above 12)",
		"bench", "max queued")
	var worst uint64
	for _, b := range Benchmarks() {
		m := r.RunOptimal(gpu.ProtoGETM, b)
		if m.StallBufMaxOccupancy > worst {
			worst = m.StallBufMaxOccupancy
		}
		tab.AddRow(report.Str(b), report.Int(m.StallBufMaxOccupancy))
	}
	tab.AddRow(report.Str("max"), report.Int(worst))
	return newReport("fig15", "Stall buffer occupancy", tab)
}

// Fig16 reports the mean number of requests concurrently stalled per address.
func Fig16(r *Runner) *Report {
	tab := report.NewTable("fig16", "mean stalled requests per address (paper: ~1)",
		"bench", "reqs/addr")
	var sum float64
	for _, b := range Benchmarks() {
		m := r.RunOptimal(gpu.ProtoGETM, b)
		v := m.StallBufPerAddr.Mean()
		sum += v
		tab.AddRow(report.Str(b), report.Num(v, 2))
	}
	tab.AddRow(report.Str("avg"), report.Num(sum/float64(len(Benchmarks())), 2))
	return newReport("fig16", "Stalled requests per address", tab)
}

// Fig17 compares the 15-core and 56-core machines, everything normalized to
// 15-core WarpTM.
func Fig17(r *Runner) *Report {
	tab := report.NewTable("fig17", "execution time, 15- vs 56-core, normalized to 15-core WarpTM",
		"bench", "WTM", "EAPG", "GETM", "WTM-56", "EAPG-56", "GETM-56")
	g15 := map[string]float64{}
	g56 := map[string]float64{}
	for _, b := range Benchmarks() {
		base := float64(r.RunOptimal(gpu.ProtoWarpTM, b).TotalCycles)
		cells := []report.Cell{report.Str(b), report.Num(1.0, 2)}
		for _, p := range []gpu.Protocol{gpu.ProtoEAPG, gpu.ProtoGETM} {
			v := float64(r.RunOptimal(p, b).TotalCycles) / base
			if p == gpu.ProtoGETM {
				g15[b] = v
			}
			cells = append(cells, report.Num(v, 2))
		}
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoEAPG, gpu.ProtoGETM} {
			conc := r.OptimalConc(p, b)
			m := r.Run(Job{Proto: p, Bench: b, Conc: conc, Cores: 56})
			v := float64(m.TotalCycles) / base
			if p == gpu.ProtoGETM {
				g56[b] = v
			}
			cells = append(cells, report.Num(v, 2))
		}
		tab.AddRow(cells...)
	}
	tab.AddNote("gmean GETM 15-core %.2f, 56-core %.2f (paper: trends match the 15-core setup)",
		gmeanOf(g15), gmeanOf(g56))
	return newReport("fig17", "Scalability", tab)
}

// Table4 reports the optimal concurrency settings and abort rates.
func Table4(r *Runner) *Report {
	protos := []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoEAPG, gpu.ProtoWarpTMEL, gpu.ProtoGETM}
	cols := []string{"bench"}
	for _, p := range protos {
		cols = append(cols, "c:"+shortName(p))
	}
	for _, p := range protos {
		cols = append(cols, "ab:"+shortName(p))
	}
	tab := report.NewTable("table4", "optimal concurrency (warps/core; NL = unlimited) and aborts per 1K commits", cols...)
	for _, b := range Benchmarks() {
		cells := []report.Cell{report.Str(b)}
		for _, p := range protos {
			cells = append(cells, report.Str(concName(r.OptimalConc(p, b))))
		}
		for _, p := range protos {
			cells = append(cells, report.Num(r.RunOptimal(p, b).AbortsPer1KCommits(), 0))
		}
		tab.AddRow(cells...)
	}
	tab.AddNote("paper: GETM runs efficiently at higher concurrency and tolerates higher abort")
	tab.AddNote("       rates because its commits and aborts are cheap")
	return newReport("table4", "Optimal concurrency and abort rates", tab)
}

// Table5 evaluates the area/power model.
func Table5(r *Runner) *Report {
	m := area.Machine{
		Cores:        15,
		Partitions:   6,
		WarpsPerCore: 48,
		GETM:         gpu.DefaultConfig(gpu.ProtoGETM).GETM,
		WarpTM:       gpu.DefaultConfig(gpu.ProtoWarpTM).WarpTM,
	}
	tab := report.NewTable("table5", "area and power overheads (CACTI-calibrated model, 32nm)",
		"element", "area [mm2]", "power [mW]")
	add := func(inv area.Inventory) {
		for _, s := range inv.Structures {
			tab.AddRow(report.Str(fmt.Sprintf("%s (%.1fKB x %d)", s.Name, s.KBytesEach, s.Instances)),
				report.Num(s.Area(), 3), report.Num(s.Power(), 2))
		}
		tab.AddRow(report.Str("total "+inv.Protocol), report.Num(inv.Area(), 3), report.Num(inv.Power(), 2))
	}
	wtm := area.WarpTMInventory(m)
	ea := area.EAPGInventory(m)
	g := area.GETMInventory(m)
	add(wtm)
	add(ea)
	add(g)
	tab.AddNote("GETM vs WarpTM: %.1fx lower area, %.1fx lower power", wtm.Area()/g.Area(), wtm.Power()/g.Power())
	tab.AddNote("GETM vs EAPG:   %.1fx lower area, %.1fx lower power", ea.Area()/g.Area(), ea.Power()/g.Power())
	return newReport("table5", "Area and power overheads", tab)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func shortName(p gpu.Protocol) string {
	switch p {
	case gpu.ProtoWarpTM:
		return "WTM"
	case gpu.ProtoWarpTMEL:
		return "WTM-EL"
	case gpu.ProtoEAPG:
		return "EAPG"
	case gpu.ProtoGETM:
		return "GETM"
	case gpu.ProtoFGLock:
		return "FGLock"
	}
	return string(p)
}

func concName(c int) string {
	if c == 0 {
		return "NL"
	}
	return fmt.Sprint(c)
}
