package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/trace"
	"getm/internal/workloads"
)

// Precompute fills the runner's cache for the standard experiment grid —
// every (protocol, benchmark, concurrency) triple plus the Fig 14 and Fig 17
// variations — using a worker pool. Each simulation is single-threaded and
// fully deterministic, so running them on parallel workers changes nothing
// except wall-clock time; the experiments then assemble their tables from
// cache hits. It returns the simulation failures from both waves, joined
// (nil if every job ran clean).
func Precompute(r *Runner, workers int) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	var jobs []Job
	for _, b := range Benchmarks() {
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoWarpTMEL, gpu.ProtoEAPG, gpu.ProtoGETM} {
			for _, c := range ConcLevels {
				jobs = append(jobs, Job{Proto: p, Bench: b, Conc: c})
			}
		}
		jobs = append(jobs, Job{Proto: gpu.ProtoFGLock, Bench: b})
	}

	err1 := r.runParallel(jobs, workers)

	// Second wave: jobs that depend on the optimal concurrency (now cached).
	var wave2 []Job
	for _, b := range Benchmarks() {
		getmConc := r.OptimalConc(gpu.ProtoGETM, b)
		for _, entries := range []int{2048, 4096, 8192} {
			wave2 = append(wave2, Job{Proto: gpu.ProtoGETM, Bench: b, Conc: getmConc, MetaEntries: entries})
		}
		for _, g := range []int{16, 32, 64, 128} {
			wave2 = append(wave2, Job{Proto: gpu.ProtoGETM, Bench: b, Conc: getmConc, Granularity: g})
		}
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoEAPG, gpu.ProtoGETM} {
			wave2 = append(wave2, Job{Proto: p, Bench: b, Conc: r.OptimalConc(p, b), Cores: 56})
		}
	}
	err2 := r.runParallel(wave2, workers)
	return errors.Join(err1, err2)
}

// runParallel executes the batch on a worker pool, deduplicated both against
// the cache and within the batch (overrides that match the defaults can give
// several jobs the same key). Every simulation goes through RunE, so the
// singleflight map also dedupes against concurrent outside callers. Worker
// failures are collected — never panicked — and returned joined.
func (r *Runner) runParallel(jobs []Job, workers int) error {
	seen := make(map[string]bool, len(jobs))
	var pending []Job
	for _, j := range jobs {
		k := r.norm(j).key()
		if seen[k] || r.cached(k) {
			continue
		}
		seen[k] = true
		pending = append(pending, j)
	}
	if len(pending) == 0 {
		return nil
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	var wg sync.WaitGroup
	var done atomic.Int64
	total := len(pending)
	errCh := make(chan error, len(pending))
	ch := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				if _, err := r.RunE(j); err != nil {
					errCh <- err
				}
				if r.Progress != nil {
					r.Progress(int(done.Add(1)), total)
				}
			}
		}()
	}
	for _, j := range pending {
		ch <- j
	}
	close(ch)
	wg.Wait()
	close(errCh)

	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// runJob executes one simulation without touching shared state. A ctx cancel
// stops the engine within one chunk of simulated cycles (gpu.RunContext).
func runJob(ctx context.Context, j Job, scale float64, seed uint64) (*stats.Metrics, error) {
	variant := workloads.TM
	if j.Proto == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}
	k := workloads.MustBuild(j.Bench, variant, workloads.Params{Scale: scale, Seed: seed})
	res, err := gpu.RunContext(ctx, j.config(), k)
	if err != nil {
		return nil, err
	}
	return res.Metrics, nil
}

// runJobTraced is runJob with a trace recorder attached: same workload, same
// config, plus cfg.Trace. Tracing is cycle-neutral by the trace layer's
// contract, so the metrics are identical to runJob's; the recorder rides back
// so the caller can key it by run id and export it on request.
func runJobTraced(ctx context.Context, j Job, scale float64, seed uint64, opts *trace.Options) (*stats.Metrics, *trace.Recorder, error) {
	variant := workloads.TM
	if j.Proto == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}
	k := workloads.MustBuild(j.Bench, variant, workloads.Params{Scale: scale, Seed: seed})
	cfg := j.config()
	o := *opts
	cfg.Trace = &o
	res, err := gpu.RunContext(ctx, cfg, k)
	if err != nil {
		return nil, nil, err
	}
	return res.Metrics, res.Trace, nil
}
