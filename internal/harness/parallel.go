package harness

import (
	"runtime"
	"sync"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/workloads"
)

// Precompute fills the runner's cache for the standard experiment grid —
// every (protocol, benchmark, concurrency) triple plus the Fig 14 and Fig 17
// variations — using a worker pool. Each simulation is single-threaded and
// fully deterministic, so running them on parallel workers changes nothing
// except wall-clock time; the experiments then assemble their tables from
// cache hits.
func Precompute(r *Runner, workers int) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	var jobs []Job
	for _, b := range Benchmarks() {
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoWarpTMEL, gpu.ProtoEAPG, gpu.ProtoGETM} {
			for _, c := range ConcLevels {
				jobs = append(jobs, Job{Proto: p, Bench: b, Conc: c})
			}
		}
		jobs = append(jobs, Job{Proto: gpu.ProtoFGLock, Bench: b})
	}

	r.runParallel(jobs, workers)

	// Second wave: jobs that depend on the optimal concurrency (now cached).
	var wave2 []Job
	for _, b := range Benchmarks() {
		getmConc := r.OptimalConc(gpu.ProtoGETM, b)
		for _, entries := range []int{2048, 4096, 8192} {
			wave2 = append(wave2, Job{Proto: gpu.ProtoGETM, Bench: b, Conc: getmConc, MetaEntries: entries})
		}
		for _, g := range []int{16, 32, 64, 128} {
			wave2 = append(wave2, Job{Proto: gpu.ProtoGETM, Bench: b, Conc: getmConc, Granularity: g})
		}
		for _, p := range []gpu.Protocol{gpu.ProtoWarpTM, gpu.ProtoEAPG, gpu.ProtoGETM} {
			wave2 = append(wave2, Job{Proto: p, Bench: b, Conc: r.OptimalConc(p, b), Cores: 56})
		}
	}
	r.runParallel(wave2, workers)
}

// runParallel executes the uncached jobs on a worker pool and installs the
// results in the cache.
func (r *Runner) runParallel(jobs []Job, workers int) {
	var pending []Job
	for _, j := range jobs {
		if _, ok := r.cache[j.key()]; !ok {
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return
	}

	type result struct {
		key string
		m   *stats.Metrics
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	ch := make(chan Job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				m := runJob(j, r.Scale, r.Seed)
				mu.Lock()
				r.cache[j.key()] = m
				if r.Verbose != nil {
					r.Verbose("ran " + j.key())
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range pending {
		ch <- j
	}
	close(ch)
	wg.Wait()
}

// runJob executes one simulation without touching shared state.
func runJob(j Job, scale float64, seed uint64) *stats.Metrics {
	variant := workloads.TM
	if j.Proto == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}
	k := workloads.MustBuild(j.Bench, variant, workloads.Params{Scale: scale, Seed: seed})
	res, err := gpu.Run(j.config(), k)
	if err != nil {
		panic("harness: " + j.key() + ": " + err.Error())
	}
	return res.Metrics
}
