// Package harness defines the reproduction experiments: one entry per figure
// and table of the paper's evaluation (Figs 3-17, Tables IV-V), built on a
// thread-safe caching runner so shared configurations (e.g. each protocol at
// its optimal concurrency) simulate once per process, no matter how many
// goroutines ask for them.
package harness

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"getm/internal/gpu"
	"getm/internal/policy"
	"getm/internal/report"
	"getm/internal/sim"
	"getm/internal/stats"
	"getm/internal/store"
	"getm/internal/trace"
	"getm/internal/workloads"
)

// ConcLevels are the paper's transactional-concurrency settings (0 = NL).
var ConcLevels = []int{1, 2, 4, 8, 16, 0}

// Runner executes, deduplicates, and caches simulation runs in two tiers:
// an in-memory map in front of an optional crash-safe on-disk store. A
// process resumed after a kill re-runs only the cells the previous process
// never persisted, and — because stored metrics round-trip exactly — its
// reports are byte-identical to an uninterrupted run's.
//
// Concurrency contract: Run, RunE, RunOptimal, OptimalConc, Err, and the
// parallel precompute machinery are all safe to call from any number of
// goroutines. A singleflight-style in-flight map guarantees that each unique
// Job.key() simulates exactly once per process: concurrent callers of the
// same job block until the one executing simulation finishes and then share
// its (immutable) result. The configuration fields (Scale, Seed, Verbose,
// Ctx, Store, StoreReuse) must be set before the first Run* call and not
// mutated afterwards; Verbose may be invoked from any worker goroutine.
type Runner struct {
	// Scale shrinks workloads for quick runs (1.0 = full reproduction
	// scale).
	Scale float64
	// Seed drives workload generation.
	Seed uint64
	// Verbose, if set, receives progress lines (possibly from multiple
	// goroutines at once).
	Verbose func(string)
	// Ctx, if set, cancels in-flight and future simulations: once it fires,
	// running engines stop within one chunk of simulated cycles and RunE
	// returns an error matching gpu.ErrCanceled. Canceled results are never
	// cached in either tier, so a later process (or a retry with a live
	// context) re-runs them.
	Ctx context.Context
	// Store, if set, is the durable second cache tier: every completed
	// simulation is persisted, and (when StoreReuse is set) cache misses
	// consult the store before simulating. Errors are never persisted.
	Store *store.Store
	// StoreReuse enables reading existing records from Store. Without it the
	// store is write-only: records are refreshed but never trusted — the
	// CLIs' `-resume=false`.
	StoreReuse bool
	// Persist, if set, replaces the direct Store.Put for completed
	// simulations: the runner hands (storeKey, jobKey, metrics) to the hook
	// and moves on. A serving stack points this at a write-behind coalescer
	// so the simulation path never blocks on an fsync; the hook owner then
	// guarantees durability on its own schedule (flush interval, high-water
	// mark, graceful drain). Reads still go through Store directly, so the
	// hook must front the same store the runner consults — any record it has
	// not flushed yet is still covered by the runner's in-memory tier.
	Persist func(storeKey, desc string, m *stats.Metrics) error
	// Shards is the default Job.Shards for jobs that leave it zero: 0 runs
	// every cell on the serial engine; > 0 runs shardable cells on the
	// parallel engine with that many workers (non-shardable cells fall back
	// to serial). See Job.Shards for the cache-identity rules.
	Shards int
	// Policy, when non-zero, pins every transactional cell (every protocol
	// but fglock) to one protocol-matrix point; jobs carrying their own
	// Policy keep it. The v2 API's WithPolicy option sets this. Preset
	// points collapse to their legacy protocol name during normalization,
	// so pinning a preset changes no cache or store identity.
	Policy policy.Policy
	// Trace, if set, attaches a trace recorder to every simulation this
	// runner actually executes (cache and store hits never trace — there is
	// no simulation to observe). Tracing never changes results: the engine
	// contract from the trace layer is that traced runs are cycle-identical
	// to untraced ones, so cached metrics stay byte-identical either way.
	Trace *trace.Options
	// TraceSink receives each executed simulation's recorder, keyed by the
	// job's store key (the durable run id a serving front end hands out).
	// Called from whichever goroutine ran the simulation, after the metrics
	// are final but before they are published; must not block for long.
	TraceSink func(storeKey string, rec *trace.Recorder)
	// Progress, if set, is called after every batch job completes with the
	// running done count and the batch total — the hook a sweep CLI uses for
	// live progress and ETA lines. Invoked from worker goroutines; must be
	// safe for concurrent use.
	Progress func(done, total int)

	mu       sync.Mutex
	cache    map[string]*stats.Metrics
	errCache map[string]error
	inflight map[string]*inflightRun
	optC     map[string]int
	errs     []error
	simCount int // simulations actually executed (not cache or store hits)
	diskHits int // results served from the on-disk store

	// simulate replaces runJob in tests (counting stubs, failure injection).
	simulate func(context.Context, Job, float64, uint64) (*stats.Metrics, error)
}

// inflightRun is the singleflight cell shared by concurrent callers of one
// job key; done is closed once m/err are final.
type inflightRun struct {
	done chan struct{}
	m    *stats.Metrics
	err  error
}

// NewRunner returns a runner at the given scale.
func NewRunner(scale float64) *Runner {
	return &Runner{
		Scale:    scale,
		Seed:     42,
		cache:    make(map[string]*stats.Metrics),
		errCache: make(map[string]error),
		inflight: make(map[string]*inflightRun),
		optC:     make(map[string]int),
	}
}

// Job describes one simulation.
type Job struct {
	Proto gpu.Protocol
	Bench string
	Conc  int
	// Cores: 0 means the default 15-core machine; 56 selects the scaled one.
	Cores int
	// GETM metadata overrides for the Fig 14 sweeps (0 = default).
	MetaEntries int
	Granularity int
	// CycleBudget bounds the simulation's cost: the run stops after this
	// many simulated cycles and returns partial metrics tagged Truncated
	// (0 = no bound). Truncated results are never cached or persisted — the
	// budget bounds what a request may cost, it is not part of the cell's
	// identity on disk, so a budgeted request is still satisfied by a stored
	// complete result at disk-read cost.
	CycleBudget uint64
	// Shards > 0 runs shardable cells on the parallel engine with that many
	// workers. Results are identical for every Shards >= 1 (worker count is
	// physical, not semantic), so cache identity uses only the semantics
	// class (serial vs sharded), never the worker count.
	Shards int
	// Policy, when non-zero, pins the cell to one protocol-matrix point
	// (gpu.Config.Policy). Preset points are collapsed to their legacy
	// protocol name by normalization, so a preset job shares cache and
	// store identity with the equivalent name-based job; non-preset points
	// extend the cache key with the canonical axis tuple.
	Policy policy.Policy
}

func (j Job) key() string {
	k := fmt.Sprintf("%s|%s|c%d|n%d|m%d|g%d|b%d|s%d",
		j.Proto, j.Bench, j.Conc, j.Cores, j.MetaEntries, j.Granularity, j.CycleBudget, j.shardClass())
	if !j.Policy.IsZero() {
		k += "|" + j.Policy.Canonical()
	}
	return k
}

// shardClass collapses Shards to the cell's semantics class: 0 when the run
// executes on the serial engine (Shards == 0 or the config is not
// shardable), 1 for any sharded run.
func (j Job) shardClass() int {
	if j.Shards > 0 && gpu.Shardable(j.config()) {
		return 1
	}
	return 0
}

func (j Job) config() gpu.Config {
	var cfg gpu.Config
	if j.Cores == 56 {
		cfg = gpu.ScaledConfig(j.Proto)
	} else {
		cfg = gpu.DefaultConfig(j.Proto)
		if j.Cores > 0 {
			cfg.Cores = j.Cores
		}
	}
	cfg.Core.MaxTxWarps = j.Conc
	if j.MetaEntries > 0 {
		cfg.GETM.PreciseEntries = j.MetaEntries
	}
	if j.Granularity > 0 {
		cfg.GETM.GranularityBytes = j.Granularity
	}
	cfg.CycleBudget = sim.Cycle(j.CycleBudget)
	cfg.Shards = j.Shards
	cfg.Policy = j.Policy
	return cfg
}

// RunE simulates the job and returns its metrics or the simulation error.
// Results (including errors — simulations are deterministic, so a failing
// job fails identically on retry) are cached by Job.key(); concurrent calls
// for the same key share a single simulation. With a Store attached, a miss
// in memory consults the disk tier before simulating (when StoreReuse is
// set), and every completed simulation is persisted. Canceled and truncated
// runs are cached in neither tier.
func (r *Runner) RunE(j Job) (*stats.Metrics, error) {
	return r.runE(nil, j)
}

// RunECtx is RunE with a per-call context: this call's simulation (and its
// wait on a shared in-flight simulation) is bounded by ctx instead of the
// runner-wide Ctx. It is the entry point for request-scoped deadlines in a
// serving stack: each request carries its own deadline while still sharing
// one simulation with identical concurrent requests. A cancellation of a
// per-call context is returned to the caller (matching gpu.ErrCanceled) but
// — unlike a runner-wide Ctx cancellation — not recorded in Err, which would
// otherwise grow without bound in a long-lived server.
func (r *Runner) RunECtx(ctx context.Context, j Job) (*stats.Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return r.runE(ctx, j)
}

// runE is the shared two-tier cached singleflight path. ctx != nil marks a
// per-call context (RunECtx); nil falls back to the runner-wide Ctx.
// norm applies runner-wide defaults a Job leaves unset. Every path that
// derives a cache or store identity from a Job must normalize first, so one
// cell has one key whether Shards came from the job or from the runner.
func (r *Runner) norm(j Job) Job {
	if j.Shards == 0 {
		j.Shards = r.Shards
	}
	if j.Policy.IsZero() && !r.Policy.IsZero() && j.Proto != gpu.ProtoFGLock {
		j.Policy = r.Policy
	}
	if !j.Policy.IsZero() {
		if name, ok := policy.PresetName(j.Policy); ok {
			// Preset points ARE the legacy protocols: collapse to the name so
			// cache and store identity (and warm sweeps) are unchanged.
			j.Proto = gpu.Protocol(name)
			j.Policy = policy.Policy{}
		}
	}
	return j
}

func (r *Runner) runE(ctx context.Context, j Job) (*stats.Metrics, error) {
	j = r.norm(j)
	key := j.key()
	perCall := ctx != nil
	r.mu.Lock()
	if m, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return m, nil
	}
	if err, ok := r.errCache[key]; ok {
		r.mu.Unlock()
		return nil, err
	}
	if c, ok := r.inflight[key]; ok {
		// Another goroutine is simulating this job; wait and share. A
		// per-call context may stop waiting early — the shared simulation
		// keeps running for the callers still interested in it.
		r.mu.Unlock()
		if perCall {
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("harness: %s: %w", key,
					errors.Join(gpu.ErrCanceled, context.Cause(ctx)))
			}
			return c.m, c.err
		}
		<-c.done
		return c.m, c.err
	}
	c := &inflightRun{done: make(chan struct{})}
	r.inflight[key] = c
	sim := r.simulate
	if !perCall {
		ctx = r.Ctx
	}
	r.mu.Unlock()

	// Disk tier: a verified record is as good as having simulated. Corrupt
	// or truncated records fail verification inside Get and read as misses.
	fromDisk := false
	if r.Store != nil && r.StoreReuse {
		if m, ok := r.Store.Get(r.storeKey(j)); ok {
			c.m, fromDisk = m, true
		}
	}
	if !fromDisk {
		if ctx == nil {
			ctx = context.Background()
		}
		switch {
		case sim != nil:
			c.m, c.err = sim(ctx, j, r.Scale, r.Seed)
		case r.Trace != nil:
			var rec *trace.Recorder
			c.m, rec, c.err = runJobTraced(ctx, j, r.Scale, r.Seed, r.Trace)
			if c.err == nil && rec != nil && r.TraceSink != nil {
				r.TraceSink(r.storeKey(j), rec)
			}
		default:
			c.m, c.err = runJob(ctx, j, r.Scale, r.Seed)
		}
		if c.err == nil && c.m != nil && !c.m.Truncated {
			switch {
			case r.Persist != nil:
				// Write-behind: the hook accumulates the record and flushes
				// on its own schedule; the simulation path never waits on
				// disk. Durability until the next flush is the hook's
				// contract (e.g. a final flush inside a graceful drain).
				if err := r.Persist(r.storeKey(j), key, c.m); err != nil && r.Verbose != nil {
					r.Verbose("store: " + err.Error())
				}
			case r.Store != nil:
				// Persist before publishing; a crash after this point costs
				// nothing on resume. Put is atomic, so a concurrent process
				// writing the same (deterministic) record is harmless.
				if err := r.Store.Put(r.storeKey(j), key, c.m); err != nil && r.Verbose != nil {
					r.Verbose("store: " + err.Error())
				}
			}
		}
	}

	canceled := c.err != nil && errors.Is(c.err, gpu.ErrCanceled)
	truncated := c.err == nil && c.m != nil && c.m.Truncated
	r.mu.Lock()
	delete(r.inflight, key)
	switch {
	case canceled:
		// Not cached: the job never completed, and a retry with a live
		// context (or a resumed process) must actually run it. Runner-wide
		// cancellations are recorded in errs so Err reports them; per-call
		// ones belong to their caller alone.
		c.err = fmt.Errorf("harness: %s: %w", key, c.err)
		if !perCall {
			r.errs = append(r.errs, c.err)
		}
	case c.err != nil:
		c.err = fmt.Errorf("harness: %s: %w", key, c.err)
		r.errCache[key] = c.err
		r.errs = append(r.errs, c.err)
	case truncated:
		// A budgeted run cut short: the partial metrics go to this call's
		// sharers only. Neither tier caches them — the cell has no complete
		// result yet.
		r.simCount++
	default:
		r.cache[key] = c.m
		if fromDisk {
			r.diskHits++
		} else {
			r.simCount++
		}
	}
	r.mu.Unlock()
	close(c.done)

	if r.Verbose != nil {
		switch {
		case c.err != nil:
			r.Verbose("FAILED " + key + ": " + c.err.Error())
		case fromDisk:
			r.Verbose(fmt.Sprintf("load %-40s %12d cycles (store)", key, c.m.TotalCycles))
		case truncated:
			r.Verbose(fmt.Sprintf("part %-40s %12d cycles (truncated)", key, c.m.TotalCycles))
		default:
			r.Verbose(fmt.Sprintf("ran %-40s %12d cycles", key, c.m.TotalCycles))
		}
	}
	return c.m, c.err
}

// Lookup probes both cache tiers for the job's completed result without ever
// simulating: the in-memory tier first, then (with StoreReuse) the disk
// store, promoting a disk hit into memory. It is the fast path a serving
// front end takes before spending a queue slot — repeat traffic for a
// completed cell is O(map lookup) or O(disk read), never O(simulation).
func (r *Runner) Lookup(j Job) (*stats.Metrics, bool) {
	j = r.norm(j)
	key := j.key()
	r.mu.Lock()
	if m, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return m, true
	}
	r.mu.Unlock()
	if r.Store == nil || !r.StoreReuse {
		return nil, false
	}
	m, ok := r.Store.Get(r.storeKey(j))
	if !ok {
		return nil, false
	}
	r.mu.Lock()
	if prev, dup := r.cache[key]; dup {
		// Raced with a concurrent fill; keep the published result.
		m = prev
	} else {
		r.cache[key] = m
		r.diskHits++
	}
	r.mu.Unlock()
	return m, true
}

// InFlight returns the number of simulations executing (or being loaded from
// the store) right now — the singleflight map's size.
func (r *Runner) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}

// storeKey returns the job's content address in the on-disk store. The key
// zeroes cost-bound fields (CycleBudget), so budgeted and unbudgeted runs of
// one cell share a record: only complete results are ever persisted, and a
// complete result satisfies both.
func (r *Runner) storeKey(j Job) string {
	return store.Key(j.config(), j.Bench, r.Scale, r.Seed)
}

// StoreKey exposes the job's content address — the durable identity a
// serving front end hands out as a run id, valid across processes for as
// long as the store schema stands.
func (r *Runner) StoreKey(j Job) string { return r.storeKey(r.norm(j)) }

// Simulated returns the number of simulations this process actually executed
// — cache and store hits excluded. It is the instrumentation behind the
// resume guarantee: a resumed sweep must simulate only the missing cells.
func (r *Runner) Simulated() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.simCount
}

// StoreHits returns the number of results served from the on-disk store.
func (r *Runner) StoreHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.diskHits
}

// Run simulates the job (cached, thread-safe). On simulation failure it
// records the error — retrievable via Err — and returns zero-valued metrics
// so table assembly degrades instead of crashing; callers that need to react
// to individual failures should use RunE.
func (r *Runner) Run(j Job) *stats.Metrics {
	m, err := r.RunE(j)
	if err != nil {
		return new(stats.Metrics)
	}
	return m
}

// Err returns every simulation error recorded so far (joined), or nil.
func (r *Runner) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return errors.Join(r.errs...)
}

// OptimalConc searches ConcLevels for the setting minimizing total runtime
// (the paper tunes concurrency per protocol and benchmark, Table IV). Safe
// for concurrent use: racing searches run the same deterministic sweep
// (individual simulations are deduplicated by RunE) and store the same
// answer.
func (r *Runner) OptimalConc(proto gpu.Protocol, bench string) int {
	key := string(proto) + "|" + bench
	r.mu.Lock()
	if c, ok := r.optC[key]; ok {
		r.mu.Unlock()
		return c
	}
	r.mu.Unlock()

	best, bestCycles := ConcLevels[0], ^uint64(0)
	for _, c := range ConcLevels {
		m, err := r.RunE(Job{Proto: proto, Bench: bench, Conc: c})
		if err != nil {
			continue // recorded in Err(); pick among the levels that ran
		}
		if m.TotalCycles < bestCycles {
			best, bestCycles = c, m.TotalCycles
		}
	}
	r.mu.Lock()
	r.optC[key] = best
	r.mu.Unlock()
	return best
}

// RunOptimal simulates proto on bench at its optimal concurrency.
func (r *Runner) RunOptimal(proto gpu.Protocol, bench string) *stats.Metrics {
	if proto == gpu.ProtoFGLock {
		return r.Run(Job{Proto: proto, Bench: bench})
	}
	return r.Run(Job{Proto: proto, Bench: bench, Conc: r.OptimalConc(proto, bench)})
}

// cached reports whether the job's result is already in the cache.
func (r *Runner) cached(key string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.cache[key]
	if !ok {
		_, ok = r.errCache[key]
	}
	return ok
}

// cacheSize returns the number of cached results (tests).
func (r *Runner) cacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// Report is a structured experiment result: one or more tables.
type Report struct {
	ID     string
	Title  string
	Tables []*report.Table
}

func newReport(id, title string, tables ...*report.Table) *Report {
	return &Report{ID: id, Title: title, Tables: tables}
}

// String renders the report as aligned text.
func (rep *Report) String() string { return rep.Render(report.FormatText) }

// Render renders every table in the requested format.
func (rep *Report) Render(f report.Format) string {
	out := ""
	for _, t := range rep.Tables {
		out += t.Render(f) + "\n"
	}
	return out
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) *Report
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "WarpTM-LL vs WarpTM-EL tx cycles vs concurrency (HT-H)", Fig3},
		{"fig4", "Lazy vs eager WarpTM vs fine-grained locks", Fig4},
		{"fig10", "Transaction-only exec+wait time, normalized to WarpTM", Fig10},
		{"fig11", "Total execution time normalized to FGLock", Fig11},
		{"fig12", "Crossbar traffic normalized to WarpTM", Fig12},
		{"fig13", "GETM metadata-table mean access cycles", Fig13},
		{"fig14", "GETM sensitivity to metadata table size and granularity", Fig14},
		{"fig15", "Maximum stall-buffer occupancy", Fig15},
		{"fig16", "Mean stalled requests per address", Fig16},
		{"fig17", "Scalability: 15-core vs 56-core", Fig17},
		{"table4", "Optimal concurrency and abort rates", Table4},
		{"table5", "Area and power overheads (CACTI model)", Table5},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Benchmarks returns the benchmark list (paper order).
func Benchmarks() []string { return workloads.Names() }

// gmean of a map's values, iterated in sorted-key order so the result is
// deterministic (GMean itself is order-insensitive up to float rounding).
func gmeanOf(vals map[string]float64) float64 {
	var vs []float64
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vs = append(vs, vals[k])
	}
	return stats.GMean(vs)
}
