// Package harness defines the reproduction experiments: one entry per figure
// and table of the paper's evaluation (Figs 3-17, Tables IV-V), built on a
// caching runner so shared configurations (e.g. each protocol at its optimal
// concurrency) simulate once per process.
package harness

import (
	"fmt"
	"sort"

	"getm/internal/gpu"
	"getm/internal/report"
	"getm/internal/stats"
	"getm/internal/workloads"
)

// ConcLevels are the paper's transactional-concurrency settings (0 = NL).
var ConcLevels = []int{1, 2, 4, 8, 16, 0}

// Runner executes and caches simulation runs.
type Runner struct {
	// Scale shrinks workloads for quick runs (1.0 = full reproduction
	// scale).
	Scale float64
	// Seed drives workload generation.
	Seed uint64
	// Verbose, if set, receives progress lines.
	Verbose func(string)

	cache map[string]*stats.Metrics
	optC  map[string]int
}

// NewRunner returns a runner at the given scale.
func NewRunner(scale float64) *Runner {
	return &Runner{
		Scale: scale,
		Seed:  42,
		cache: make(map[string]*stats.Metrics),
		optC:  make(map[string]int),
	}
}

// Job describes one simulation.
type Job struct {
	Proto gpu.Protocol
	Bench string
	Conc  int
	// Cores: 0 means the default 15-core machine; 56 selects the scaled one.
	Cores int
	// GETM metadata overrides for the Fig 14 sweeps (0 = default).
	MetaEntries int
	Granularity int
}

func (j Job) key() string {
	return fmt.Sprintf("%s|%s|c%d|n%d|m%d|g%d", j.Proto, j.Bench, j.Conc, j.Cores, j.MetaEntries, j.Granularity)
}

func (j Job) config() gpu.Config {
	var cfg gpu.Config
	if j.Cores == 56 {
		cfg = gpu.ScaledConfig(j.Proto)
	} else {
		cfg = gpu.DefaultConfig(j.Proto)
		if j.Cores > 0 {
			cfg.Cores = j.Cores
		}
	}
	cfg.Core.MaxTxWarps = j.Conc
	if j.MetaEntries > 0 {
		cfg.GETM.PreciseEntries = j.MetaEntries
	}
	if j.Granularity > 0 {
		cfg.GETM.GranularityBytes = j.Granularity
	}
	return cfg
}

// Run simulates the job (cached).
func (r *Runner) Run(j Job) *stats.Metrics {
	if m, ok := r.cache[j.key()]; ok {
		return m
	}
	m := runJob(j, r.Scale, r.Seed)
	if r.Verbose != nil {
		r.Verbose(fmt.Sprintf("ran %-40s %12d cycles", j.key(), m.TotalCycles))
	}
	r.cache[j.key()] = m
	return m
}

// OptimalConc searches ConcLevels for the setting minimizing total runtime
// (the paper tunes concurrency per protocol and benchmark, Table IV).
func (r *Runner) OptimalConc(proto gpu.Protocol, bench string) int {
	key := string(proto) + "|" + bench
	if c, ok := r.optC[key]; ok {
		return c
	}
	best, bestCycles := ConcLevels[0], ^uint64(0)
	for _, c := range ConcLevels {
		m := r.Run(Job{Proto: proto, Bench: bench, Conc: c})
		if m.TotalCycles < bestCycles {
			best, bestCycles = c, m.TotalCycles
		}
	}
	r.optC[key] = best
	return best
}

// RunOptimal simulates proto on bench at its optimal concurrency.
func (r *Runner) RunOptimal(proto gpu.Protocol, bench string) *stats.Metrics {
	if proto == gpu.ProtoFGLock {
		return r.Run(Job{Proto: proto, Bench: bench})
	}
	return r.Run(Job{Proto: proto, Bench: bench, Conc: r.OptimalConc(proto, bench)})
}

// Report is a structured experiment result: one or more tables.
type Report struct {
	ID     string
	Title  string
	Tables []*report.Table
}

func newReport(id, title string, tables ...*report.Table) *Report {
	return &Report{ID: id, Title: title, Tables: tables}
}

// String renders the report as aligned text.
func (rep *Report) String() string { return rep.Render(report.FormatText) }

// Render renders every table in the requested format.
func (rep *Report) Render(f report.Format) string {
	out := ""
	for _, t := range rep.Tables {
		out += t.Render(f) + "\n"
	}
	return out
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) *Report
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "WarpTM-LL vs WarpTM-EL tx cycles vs concurrency (HT-H)", Fig3},
		{"fig4", "Lazy vs eager WarpTM vs fine-grained locks", Fig4},
		{"fig10", "Transaction-only exec+wait time, normalized to WarpTM", Fig10},
		{"fig11", "Total execution time normalized to FGLock", Fig11},
		{"fig12", "Crossbar traffic normalized to WarpTM", Fig12},
		{"fig13", "GETM metadata-table mean access cycles", Fig13},
		{"fig14", "GETM sensitivity to metadata table size and granularity", Fig14},
		{"fig15", "Maximum stall-buffer occupancy", Fig15},
		{"fig16", "Mean stalled requests per address", Fig16},
		{"fig17", "Scalability: 15-core vs 56-core", Fig17},
		{"table4", "Optimal concurrency and abort rates", Table4},
		{"table5", "Area and power overheads (CACTI model)", Table5},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Benchmarks returns the benchmark list (paper order).
func Benchmarks() []string { return workloads.Names() }

// gmean of a map's values in benchmark order.
func gmeanOf(vals map[string]float64) float64 {
	var vs []float64
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vs = append(vs, vals[k])
	}
	return stats.GMean(vs)
}
