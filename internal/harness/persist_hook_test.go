package harness

// Tests for the Persist hook: the write-behind seam the serving layer uses
// to replace per-simulation Store.Put with coalesced batched commits.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/store"
)

// TestPersistHookReplacesStorePut: with Persist set, a completed simulation
// goes to the hook — and only the hook; the store never sees a direct Put.
func TestPersistHookReplacesStorePut(t *testing.T) {
	dir := t.TempDir()
	r := NewRunner(0.1)
	r.Store = store.Open(dir)
	r.StoreReuse = true
	runs := richStub(r)

	var mu sync.Mutex
	persisted := map[string]*stats.Metrics{}
	r.Persist = func(storeKey, desc string, m *stats.Metrics) error {
		mu.Lock()
		defer mu.Unlock()
		persisted[storeKey] = m
		return nil
	}

	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h"}
	m, err := r.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("%d simulations, want 1", runs.Load())
	}
	mu.Lock()
	hookM, hooked := persisted[r.storeKey(j)]
	mu.Unlock()
	if !hooked {
		t.Fatal("Persist hook never received the completed result")
	}
	if hookM.TotalCycles != m.TotalCycles {
		t.Fatalf("hook got TotalCycles %d, run returned %d", hookM.TotalCycles, m.TotalCycles)
	}
	if _, ok := r.Store.Get(r.storeKey(j)); ok {
		t.Fatal("runner wrote the store directly despite the Persist hook")
	}
}

// TestPersistHookUnflushedStillServedFromMemory: a record the hook has not
// flushed yet is still covered by the runner's in-memory tier — repeat runs
// never re-simulate and never consult the (empty) store.
func TestPersistHookUnflushedStillServedFromMemory(t *testing.T) {
	r := NewRunner(0.1)
	r.Store = store.Open(t.TempDir())
	r.StoreReuse = true
	runs := richStub(r)
	r.Persist = func(string, string, *stats.Metrics) error { return nil } // drops everything

	j := Job{Proto: gpu.ProtoGETM, Bench: "ht-h"}
	first, err := r.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.RunE(j)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("repeat run re-simulated (%d runs) despite the in-memory tier", runs.Load())
	}
	if first.TotalCycles != second.TotalCycles {
		t.Fatal("repeat run returned different metrics")
	}
	if r.StoreHits() != 0 {
		t.Fatalf("%d store hits against an empty store", r.StoreHits())
	}
}

// TestPersistHookErrorDoesNotFailRun: persistence is write-behind; a hook
// failure is reported to Verbose, never to the caller.
func TestPersistHookErrorDoesNotFailRun(t *testing.T) {
	r := NewRunner(0.1)
	richStub(r)
	var logged []string
	r.Verbose = func(s string) { logged = append(logged, s) }
	r.Persist = func(string, string, *stats.Metrics) error { return errors.New("disk on fire") }

	if _, err := r.RunE(Job{Proto: gpu.ProtoGETM, Bench: "ht-h"}); err != nil {
		t.Fatalf("hook error surfaced to the caller: %v", err)
	}
	found := false
	for _, l := range logged {
		if len(l) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("hook error vanished without a Verbose line")
	}
}

// TestPersistHookSkipsErrorsAndCanceled: failed or canceled runs never reach
// the hook, exactly as they never reached Store.Put.
func TestPersistHookSkipsErrorsAndCanceled(t *testing.T) {
	r := NewRunner(0.1)
	r.simulate = func(context.Context, Job, float64, uint64) (*stats.Metrics, error) {
		return nil, errors.New("boom")
	}
	calls := 0
	r.Persist = func(string, string, *stats.Metrics) error { calls++; return nil }
	if _, err := r.RunE(Job{Proto: gpu.ProtoGETM, Bench: "ht-h"}); err == nil {
		t.Fatal("stub error vanished")
	}
	if calls != 0 {
		t.Fatalf("Persist called %d times for a failed run", calls)
	}
}
