// Package getm is a from-scratch Go reproduction of "High-Performance GPU
// Transactional Memory via Eager Conflict Detection" (Ren & Lis, HPCA 2018).
//
// The library implements GETM — a GPU hardware transactional memory with
// eager conflict detection via distributed logical timestamps and
// encounter-time write reservations — together with the full substrate the
// paper's evaluation depends on: an event-driven GPU timing simulator (SIMT
// cores, crossbars, LLC partitions, DRAM), the WarpTM, WarpTM-EL, and EAPG
// baselines, fine-grained-lock workload variants, the TM benchmark suite,
// a CACTI-calibrated area/power model, and a harness regenerating every
// figure and table of the paper's evaluation.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark entry points
// live in bench_test.go (one per paper figure/table):
//
//	go test -bench=Fig11 -benchtime=1x .
package getm
