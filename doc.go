// Package getm is a from-scratch Go reproduction of "High-Performance GPU
// Transactional Memory via Eager Conflict Detection" (Ren & Lis, HPCA 2018).
//
// The library implements GETM — a GPU hardware transactional memory with
// eager conflict detection via distributed logical timestamps and
// encounter-time write reservations — together with the full substrate the
// paper's evaluation depends on: an event-driven GPU timing simulator (SIMT
// cores, crossbars, LLC partitions, DRAM), the WarpTM, WarpTM-EL, and EAPG
// baselines, fine-grained-lock workload variants, the TM benchmark suite,
// a CACTI-calibrated area/power model, and a harness regenerating every
// figure and table of the paper's evaluation.
//
// # Protocol selection and the policy matrix
//
// Protocols are points in a four-axis policy matrix (version management,
// conflict detection, resolution, arbitration); the paper's four protocols
// are the presets GETM(), WarpTM(), WarpTMEL(), and EAPG(). Select one via
// Options.Policy or explore the rest of Policies() the same way:
//
//	m, err := getm.Run(getm.Options{Policy: getm.GETM(), Benchmark: "atm"})
//
// Migration notes: earlier releases exposed the protocol names as string
// constants (getm.GETM, getm.WarpTM, getm.WarpTMEL, getm.EAPG) used as
// Options.Protocol values. Those constants are replaced by the preset
// functions above — change Options{Protocol: getm.GETM} to
// Options{Policy: getm.GETM()}, or keep the stringly-typed form with a
// literal: Options{Protocol: "getm"}. The name strings themselves
// ("getm", "warptm", "warptm-el", "eapg") remain accepted by
// Options.Protocol indefinitely, and a preset Policy is bit-identical to
// its name — same results, same result-store content addresses. Only
// FGLock survives as a string constant because fine-grained locking is not
// a TM policy and has no matrix point.
//
// See README.md for a quickstart, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark entry points
// live in bench_test.go (one per paper figure/table):
//
//	go test -bench=Fig11 -benchtime=1x .
package getm
