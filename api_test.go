package getm

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	m, err := Run(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalCycles == 0 || m.Commits == 0 {
		t.Fatalf("empty metrics: %+v", m)
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	if _, err := Run(Options{Protocol: "magic"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Run(Options{Benchmark: "magic", Scale: 0.05}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunAllProtocolsViaAPI(t *testing.T) {
	for _, p := range Protocols() {
		m, err := Run(Options{Protocol: p, Benchmark: "ht-h", Scale: 0.05, Concurrency: 4})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if m.TotalCycles == 0 {
			t.Fatalf("%s: no cycles", p)
		}
		if p != FGLock && m.Commits == 0 {
			t.Fatalf("%s: no commits", p)
		}
	}
}

func TestRunDeterministicViaAPI(t *testing.T) {
	o := Options{Policy: GETM(), Benchmark: "atm", Scale: 0.05}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles || a.Aborts != b.Aborts {
		t.Fatal("API runs are not deterministic")
	}
}

func TestMetricsDerivedViaAPI(t *testing.T) {
	m := Metrics{Commits: 1000, Aborts: 250}
	if m.AbortsPer1KCommits() != 250 {
		t.Fatal("aborts/1k wrong")
	}
	if (Metrics{}).AbortsPer1KCommits() != 0 {
		t.Fatal("zero-commit aborts/1k should be 0")
	}
}

func TestExperimentsRegistryViaAPI(t *testing.T) {
	exps := Experiments()
	if len(exps) != 12 {
		t.Fatalf("experiments = %d, want 12", len(exps))
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentTable5(t *testing.T) {
	out, err := RunExperiment("table5", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total GETM") {
		t.Fatalf("table5 output malformed:\n%s", out)
	}
}

func TestTableVViaAPI(t *testing.T) {
	if !strings.Contains(TableV(), "lower area") {
		t.Fatal("TableV output malformed")
	}
}

func TestGranularityOption(t *testing.T) {
	fine, err := Run(Options{Benchmark: "ht-h", Scale: 0.05, Concurrency: 4, GranularityBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Run(Options{Benchmark: "ht-h", Scale: 0.05, Concurrency: 4, GranularityBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Aborts <= fine.Aborts {
		t.Fatalf("coarser granularity should raise conflicts: fine=%d coarse=%d", fine.Aborts, coarse.Aborts)
	}
}
