package getm_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// runs its experiment end-to-end on the simulator at a reduced workload
// scale (benchScale below) so `go test -bench=.` completes in minutes. At
// reduced scale contention — and therefore GETM's advantage — shrinks;
// EXPERIMENTS.md's reproduction numbers come from `cmd/getm-bench -scale
// 1.0`, which is the authoritative harness.
//
// Benches report figure-relevant metrics via b.ReportMetric (normalized
// runtimes, abort rates, access cycles) in addition to wall-clock ns/op.

import (
	"runtime"
	"testing"

	"getm/internal/gpu"
	"getm/internal/harness"
	"getm/internal/stats"
	"getm/internal/workloads"
)

// benchScale shrinks workloads for bench runs; shapes are preserved.
const benchScale = 0.1

func newRunner() *harness.Runner { return harness.NewRunner(benchScale) }

func runExperiment(b *testing.B, id string) {
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r := newRunner()
		rep := e.Run(r)
		if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		var getm, wtm []float64
		for _, bench := range harness.Benchmarks() {
			fg := float64(r.RunOptimal(gpu.ProtoFGLock, bench).TotalCycles)
			wtm = append(wtm, float64(r.RunOptimal(gpu.ProtoWarpTM, bench).TotalCycles)/fg)
			getm = append(getm, float64(r.RunOptimal(gpu.ProtoGETM, bench).TotalCycles)/fg)
		}
		b.ReportMetric(stats.GMean(wtm), "wtm-vs-fglock")
		b.ReportMetric(stats.GMean(getm), "getm-vs-fglock")
		b.ReportMetric(stats.GMean(wtm)/stats.GMean(getm), "getm-speedup")
	}
}

func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		var sum float64
		for _, bench := range harness.Benchmarks() {
			sum += r.RunOptimal(gpu.ProtoGETM, bench).MetaAccessCycles.Mean()
		}
		b.ReportMetric(sum/float64(len(harness.Benchmarks())), "meta-cycles/req")
	}
}

func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		var worst uint64
		for _, bench := range harness.Benchmarks() {
			if m := r.RunOptimal(gpu.ProtoGETM, bench); m.StallBufMaxOccupancy > worst {
				worst = m.StallBufMaxOccupancy
			}
		}
		b.ReportMetric(float64(worst), "max-stalled")
	}
}

func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		var getmAborts float64
		for _, bench := range harness.Benchmarks() {
			getmAborts += r.RunOptimal(gpu.ProtoGETM, bench).AbortsPer1KCommits()
		}
		b.ReportMetric(getmAborts/float64(len(harness.Benchmarks())), "getm-aborts/1k")
	}
}

func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// --- whole-suite precompute: the parallel-harness perf baseline ---
// suiteScale is smaller than benchScale because each iteration runs the
// entire standard grid (hundreds of simulations).

const suiteScale = 0.03

// BenchmarkSuiteSerial precomputes the full experiment grid on one worker —
// the wall-clock floor every simulation of the suite must pass through.
func BenchmarkSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(suiteScale)
		if err := harness.Precompute(r, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteParallel runs the same grid on all CPUs through the
// thread-safe deduplicating runner; the ns/op ratio to BenchmarkSuiteSerial
// is the suite-level speedup recorded in BENCH_harness.json.
func BenchmarkSuiteParallel(b *testing.B) {
	workers := runtime.NumCPU()
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(suiteScale)
		if err := harness.Precompute(r, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations (design-choice studies beyond the paper's figures) ---

func runGETMWithConfig(b *testing.B, bench string, edit func(*gpu.Config)) *stats.Metrics {
	b.Helper()
	cfg := gpu.DefaultConfig(gpu.ProtoGETM)
	cfg.Core.MaxTxWarps = 8
	if edit != nil {
		edit(&cfg)
	}
	k, err := workloads.Build(bench, workloads.TM, workloads.Params{Scale: benchScale, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	res, err := gpu.Run(cfg, k)
	if err != nil {
		b.Fatal(err)
	}
	return res.Metrics
}

// BenchmarkAblationStallBuffer compares queueing conflicting requests at the
// LLC against aborting them outright (stall buffer disabled).
func BenchmarkAblationStallBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := runGETMWithConfig(b, "ht-h", nil)
		without := runGETMWithConfig(b, "ht-h", func(c *gpu.Config) {
			c.GETM.StallLines = 0
		})
		b.ReportMetric(float64(without.TotalCycles)/float64(with.TotalCycles), "slowdown-no-stallbuf")
		b.ReportMetric(without.AbortsPer1KCommits()-with.AbortsPer1KCommits(), "extra-aborts/1k")
	}
}

// BenchmarkAblationStash measures the cuckoo stash's effect on metadata
// access latency under heavy table pressure (a deliberately undersized
// precise table forces long displacement chains).
func BenchmarkAblationStash(b *testing.B) {
	small := func(c *gpu.Config) { c.GETM.PreciseEntries = 192 }
	for i := 0; i < b.N; i++ {
		with := runGETMWithConfig(b, "ht-l", small)
		without := runGETMWithConfig(b, "ht-l", func(c *gpu.Config) {
			small(c)
			c.GETM.StashEntries = 0
		})
		b.ReportMetric(with.MetaAccessCycles.Mean(), "meta-cycles-stash")
		b.ReportMetric(without.MetaAccessCycles.Mean(), "meta-cycles-nostash")
	}
}

// BenchmarkAblationApproxTable compares the recency bloom filter against the
// two-register max-timestamp fallback the paper rejects (§V-B1), under a
// small precise table so evictions actually reach the approximate level.
func BenchmarkAblationApproxTable(b *testing.B) {
	small := func(c *gpu.Config) { c.GETM.PreciseEntries = 192 }
	for i := 0; i < b.N; i++ {
		filter := runGETMWithConfig(b, "ht-m", small)
		registers := runGETMWithConfig(b, "ht-m", func(c *gpu.Config) {
			small(c)
			c.GETM.ApproxEntries = 1 // one entry per way = global max registers
			c.GETM.ApproxWays = 1
		})
		b.ReportMetric(filter.AbortsPer1KCommits(), "aborts/1k-filter")
		b.ReportMetric(registers.AbortsPer1KCommits(), "aborts/1k-registers")
		b.ReportMetric(float64(registers.TotalCycles)/float64(filter.TotalCycles), "slowdown-registers")
	}
}

// BenchmarkAblationCommitPipelining sweeps WarpTM's validated-but-unconfirmed
// window: depth 1 is the paper's fully serialized commit sequence; deeper
// windows recover KiloTM-style hazard pipelining.
func BenchmarkAblationCommitPipelining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var base float64
		for _, depth := range []int{1, 4, 16} {
			cfg := gpu.DefaultConfig(gpu.ProtoWarpTM)
			cfg.Core.MaxTxWarps = 8
			cfg.WarpTM.MaxInFlight = depth
			k, err := workloads.Build("ht-h", workloads.TM, workloads.Params{Scale: benchScale, Seed: 42})
			if err != nil {
				b.Fatal(err)
			}
			res, err := gpu.Run(cfg, k)
			if err != nil {
				b.Fatal(err)
			}
			if depth == 1 {
				base = float64(res.Metrics.TotalCycles)
			}
			b.ReportMetric(float64(res.Metrics.TotalCycles)/base, "rel-cycles-depth")
		}
	}
}

// BenchmarkAblationBackoff sweeps the abort-retry backoff cap.
func BenchmarkAblationBackoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		aggressive := runGETMWithConfig(b, "ap", func(c *gpu.Config) {
			c.Core.BackoffCap = 64
		})
		tuned := runGETMWithConfig(b, "ap", nil)
		b.ReportMetric(float64(aggressive.TotalCycles)/float64(tuned.TotalCycles), "slowdown-lowcap")
	}
}

// BenchmarkAblationGranularity contrasts the finest and coarsest conflict
// granularities on the false-sharing-sensitive hashtable.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fine := runGETMWithConfig(b, "ht-h", func(c *gpu.Config) { c.GETM.GranularityBytes = 16 })
		coarse := runGETMWithConfig(b, "ht-h", func(c *gpu.Config) { c.GETM.GranularityBytes = 128 })
		b.ReportMetric(float64(coarse.TotalCycles)/float64(fine.TotalCycles), "coarse-vs-fine")
	}
}

// BenchmarkAblationRollover measures the cost of narrow logical timestamps:
// each rollover drains all in-flight transactions and flushes the metadata
// tables (§V-B1 argues 32+ bit timestamps make this negligible — rollover
// less than once per 1.5 hours; forcing a tiny width shows the machinery's
// cost and that correctness survives repeated rollovers).
func BenchmarkAblationRollover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// AP's hot counters advance logical time fastest.
		wide := runGETMWithConfig(b, "ap", nil)
		narrow := runGETMWithConfig(b, "ap", func(c *gpu.Config) {
			c.GETM.TSBits = 7
		})
		b.ReportMetric(float64(narrow.Extra["rollovers"]), "rollovers")
		b.ReportMetric(float64(narrow.TotalCycles)/float64(wide.TotalCycles), "slowdown-7bit-ts")
	}
}
