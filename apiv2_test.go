package getm_test

// Tests for the v2 surface: typed errors, context-aware runs, and the
// durable experiment store.

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"getm"
)

func TestTypedErrors(t *testing.T) {
	if _, err := getm.Run(getm.Options{Protocol: "htm3000"}); !errors.Is(err, getm.ErrUnknownProtocol) {
		t.Fatalf("bad protocol: err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := getm.Run(getm.Options{Benchmark: "nope"}); !errors.Is(err, getm.ErrUnknownBenchmark) {
		t.Fatalf("bad benchmark: err = %v, want ErrUnknownBenchmark", err)
	}
	if _, err := getm.RunExperimentContext(context.Background(), "fig99"); !errors.Is(err, getm.ErrUnknownExperiment) {
		t.Fatalf("bad experiment: err = %v, want ErrUnknownExperiment", err)
	}
	// The unknown-experiment message should name valid ids to help the caller.
	_, err := getm.RunExperimentContext(context.Background(), "fig99")
	if !strings.Contains(err.Error(), "fig3") {
		t.Fatalf("unknown-experiment error should list valid ids, got %q", err)
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := getm.RunContext(ctx, getm.Options{Benchmark: "ht-h", Scale: 0.05})
	if !errors.Is(err, getm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also match context.Canceled", err)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	o := getm.Options{Policy: getm.GETM(), Benchmark: "atm", Concurrency: 4, Scale: 0.05}
	m1, err1 := getm.Run(o)
	m2, err2 := getm.RunContext(context.Background(), o)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("Run and RunContext disagree:\n%+v\n%+v", m1, m2)
	}
	if m1.Truncated {
		t.Fatal("uncancelled run reported Truncated")
	}
}

func TestExperimentsTyped(t *testing.T) {
	exps := getm.Experiments()
	if len(exps) != 12 {
		t.Fatalf("got %d experiments, want 12", len(exps))
	}
	var first getm.Experiment = exps[0]
	if first.ID != "fig3" || first.Title == "" {
		t.Fatalf("unexpected first experiment: %+v", first)
	}
}

func TestRunExperimentContextStore(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	out1, err := getm.RunExperimentContext(ctx, "fig3", getm.WithScale(0.05), getm.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("store dir is empty after a stored experiment run")
	}

	// A second process over the warm store renders the identical report.
	out2, err := getm.RunExperimentContext(ctx, "fig3", getm.WithScale(0.05), getm.WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("stored experiment re-run is not byte-identical")
	}

	// And matches a storeless run.
	out3, err := getm.RunExperimentContext(ctx, "fig3", getm.WithScale(0.05), getm.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out3 {
		t.Fatal("stored experiment differs from a storeless run")
	}
}

func TestRunExperimentContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := getm.RunExperimentContext(ctx, "fig3", getm.WithScale(0.05))
	if !errors.Is(err, getm.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
