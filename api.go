package getm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"getm/internal/area"
	"getm/internal/gpu"
	"getm/internal/harness"
	"getm/internal/workloads"
)

// FGLock is the protocol name of the hand-tuned fine-grained-lock variant.
// It is the one synchronization mechanism that is not a transactional-memory
// policy, so it has no matrix preset — select it by name. The TM protocols
// are Policy presets instead: GETM(), WarpTM(), WarpTMEL(), EAPG() (their
// names — "getm", "warptm", "warptm-el", "eapg" — are still accepted by
// Options.Protocol; see doc.go for migration notes).
const FGLock = "fglock"

// Protocols lists the supported synchronization mechanisms by name: the
// four TM policy presets plus fglock.
func Protocols() []string {
	return []string{"getm", "warptm", "warptm-el", "eapg", FGLock}
}

// Benchmarks lists the TM workloads from the paper's Table III.
func Benchmarks() []string { return workloads.Names() }

// Options configures one simulation run.
//
// Two fields use the zero value as a "default, please" sentinel rather than
// a literal setting: Scale == 0 is normalized to 1.0 (full reproduction
// scale), and Seed == 0 is normalized to 42 (the reproduction seed). A
// literal scale of 0 is meaningless, but note this makes a literal seed of 0
// inexpressible — runs that must distinguish seeds should use values >= 1.
// The normalization happens on a copy inside Run/RunContext; the caller's
// Options value is never modified.
type Options struct {
	// Protocol names the synchronization mechanism: one of Protocols()
	// (default "getm"). Ignored when Policy is set.
	Protocol string
	// Policy, when non-zero, selects the protocol-matrix point directly and
	// takes precedence over Protocol. The presets (GETM(), WarpTM(),
	// WarpTMEL(), EAPG()) reproduce the named protocols bit-for-bit; any
	// other point from Policies() explores the matrix beyond the paper.
	// Invalid combinations fail with an error matching ErrInvalidPolicy.
	Policy Policy
	// Benchmark is one of Benchmarks() (default "atm").
	Benchmark string
	// Concurrency limits transactional warps per core; 0 means unlimited.
	Concurrency int
	// Cores selects the machine: 15 (default, the paper's GTX480-like
	// setup) or 56 (the scalability configuration).
	Cores int
	// Scale multiplies workload sizes. 0 is a sentinel for the default 1.0.
	Scale float64
	// Seed drives workload generation. 0 is a sentinel for the default 42.
	Seed uint64
	// MetadataEntries and GranularityBytes override GETM's metadata table
	// (0 = paper defaults: 4096 entries, 32-byte granules).
	MetadataEntries  int
	GranularityBytes int
}

func (o Options) normalize() Options {
	if !o.Policy.IsZero() {
		// Policy drives; keep Protocol coherent where a preset names it so
		// e.g. the fglock workload-variant check stays name-based.
		if name, ok := policyPresetName(o.Policy); ok {
			o.Protocol = name
		} else {
			o.Protocol = ""
		}
	} else if o.Protocol == "" {
		o.Protocol = "getm"
	}
	if o.Benchmark == "" {
		o.Benchmark = "atm"
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// config builds the machine configuration the options describe.
func (o Options) config() gpu.Config {
	var cfg gpu.Config
	if o.Cores == 56 {
		cfg = gpu.ScaledConfig(gpu.Protocol(o.Protocol))
	} else {
		cfg = gpu.DefaultConfig(gpu.Protocol(o.Protocol))
		if o.Cores > 0 {
			cfg.Cores = o.Cores
		}
	}
	cfg.Core.MaxTxWarps = o.Concurrency
	if o.MetadataEntries > 0 {
		cfg.GETM.PreciseEntries = o.MetadataEntries
	}
	if o.GranularityBytes > 0 {
		cfg.GETM.GranularityBytes = o.GranularityBytes
	}
	cfg.Policy = o.Policy.internal()
	return cfg
}

// validate checks the enumerable fields up front so bad options fail with
// the typed sentinels before any simulation work.
func (o Options) validate() error {
	if !o.Policy.IsZero() {
		if err := o.Policy.Validate(); err != nil {
			return err
		}
	} else {
		okProto := false
		for _, p := range Protocols() {
			if o.Protocol == p {
				okProto = true
			}
		}
		if !okProto {
			return fmt.Errorf("%w %q (want one of %v)", ErrUnknownProtocol, o.Protocol, Protocols())
		}
	}
	okBench := false
	for _, b := range Benchmarks() {
		if o.Benchmark == b {
			okBench = true
		}
	}
	if !okBench {
		return fmt.Errorf("%w %q (want one of %v)", ErrUnknownBenchmark, o.Benchmark, Benchmarks())
	}
	return nil
}

// Metrics summarizes a run. Cycle quantities are in interconnect cycles.
type Metrics struct {
	// TotalCycles is the kernel's wall-clock length.
	TotalCycles uint64
	// TxExecCycles and TxWaitCycles split per-warp transactional time into
	// execution (including retries) and waiting (throttle, commit round
	// trips, backoff), summed across warps.
	TxExecCycles uint64
	TxWaitCycles uint64
	// Commits and Aborts count thread-level transactions.
	Commits uint64
	Aborts  uint64
	// AbortsByCause breaks down Aborts ("war", "waw-raw", "validation",
	// "intra-warp", "stall-full", "early-abort").
	AbortsByCause map[string]uint64
	// InterconnectBytes is total crossbar payload traffic.
	InterconnectBytes uint64
	// SilentCommits counts WarpTM's TCD read-only silent commits.
	SilentCommits uint64
	// MetaAccessCycles is GETM's mean metadata-table latency per request.
	MetaAccessCycles float64
	// MaxStalledRequests is the peak GETM stall-buffer occupancy.
	MaxStalledRequests uint64
	// Counters carries additional protocol-specific counters.
	Counters map[string]uint64
	// Truncated marks partial metrics from a run cut short by context
	// cancellation (RunContext returned an error matching ErrCanceled
	// alongside these tallies). Truncated metrics cover the run's first
	// TotalCycles cycles only and skip end-of-run verification.
	Truncated bool
}

// AbortsPer1KCommits returns the paper's Table IV abort metric. When the run
// committed nothing but aborted at least once the rate is +Inf (check with
// math.IsInf); it is 0 only when there were neither commits nor aborts.
func (m Metrics) AbortsPer1KCommits() float64 {
	if m.Commits == 0 {
		if m.Aborts > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(m.Aborts) * 1000 / float64(m.Commits)
}

// Run simulates one benchmark under one protocol and returns its metrics.
// The run is deterministic for fixed Options. It is the context-free wrapper
// around RunContext.
func Run(o Options) (Metrics, error) {
	return RunContext(context.Background(), o)
}

// RunContext simulates one benchmark under one protocol, honouring ctx: a
// cancel or deadline stops the engine within one chunk of simulated cycles
// (gpu.DefaultCancelChunk) and returns the partial metrics accumulated so
// far, tagged Truncated, alongside an error matching ErrCanceled. Runs are
// deterministic for fixed Options, and a cancellable context that never
// fires changes nothing about the result.
func RunContext(ctx context.Context, o Options) (Metrics, error) {
	o = o.normalize()
	if err := o.validate(); err != nil {
		return Metrics{}, err
	}

	variant := workloads.TM
	if o.Protocol == FGLock {
		variant = workloads.FGLock
	}
	k, err := workloads.Build(o.Benchmark, variant, workloads.Params{Scale: o.Scale, Seed: o.Seed})
	if err != nil {
		return Metrics{}, err
	}
	res, err := gpu.RunContext(ctx, o.config(), k)
	if res == nil {
		return Metrics{}, err
	}
	return toMetrics(res), err
}

// toMetrics converts the internal result to the public metrics shape.
func toMetrics(res *gpu.Result) Metrics {
	m := res.Metrics
	out := Metrics{
		TotalCycles:        m.TotalCycles,
		TxExecCycles:       m.TxExecCycles,
		TxWaitCycles:       m.TxWaitCycles,
		Commits:            m.Commits,
		Aborts:             m.Aborts,
		AbortsByCause:      map[string]uint64{},
		InterconnectBytes:  m.XbarBytes(),
		SilentCommits:      m.SilentCommits,
		MetaAccessCycles:   m.MetaAccessCycles.Mean(),
		MaxStalledRequests: m.StallBufMaxOccupancy,
		Counters:           map[string]uint64{},
		Truncated:          res.Truncated || m.Truncated,
	}
	for k, v := range m.AbortsByCause {
		out.AbortsByCause[k] = v
	}
	for k, v := range m.Extra {
		out.Counters[k] = v
	}
	return out
}

// Experiment identifies one reproduction experiment (a figure or table of
// the paper's evaluation).
type Experiment struct {
	ID    string
	Title string
}

// Experiments lists the reproduction experiment ids (fig3..fig17, table4,
// table5) with their titles, in the paper's order.
func Experiments() []Experiment {
	var out []Experiment
	for _, e := range harness.All() {
		out = append(out, Experiment{ID: e.ID, Title: e.Title})
	}
	return out
}

// RunExperiment regenerates one of the paper's figures or tables at the
// given workload scale (1.0 = full; non-positive values mean 1.0) and
// returns the rendered report. It is the context-free wrapper around
// RunExperimentContext.
func RunExperiment(id string, scale float64) (string, error) {
	return RunExperimentContext(context.Background(), id, WithScale(scale))
}

func experimentIDs() []string {
	var ids []string
	for _, x := range harness.All() {
		ids = append(ids, x.ID)
	}
	sort.Strings(ids)
	return ids
}

// TableV returns the silicon area and power comparison (paper Table V) from
// the CACTI-calibrated model.
func TableV() string { return area.TableV() }
