package getm

import (
	"errors"

	"getm/internal/gpu"
	"getm/internal/policy"
)

// Typed errors for the public API, usable with errors.Is. The v2 surface
// guarantees these identities are stable: validation failures and
// cancellations always wrap the matching sentinel, never a bare string.
var (
	// ErrUnknownProtocol reports an Options.Protocol outside Protocols().
	ErrUnknownProtocol = errors.New("getm: unknown protocol")
	// ErrUnknownBenchmark reports an Options.Benchmark outside Benchmarks().
	ErrUnknownBenchmark = errors.New("getm: unknown benchmark")
	// ErrUnknownExperiment reports an experiment id outside Experiments().
	ErrUnknownExperiment = errors.New("getm: unknown experiment")
	// ErrInvalidPolicy reports a Policy combination outside Policies(): an
	// axis value outside its enumeration, or an unimplementable composition
	// (eager version management with lazy detection or requester-wins
	// resolution; lazy version management with timestamp-order resolution).
	// Every policy validation failure — API, CLI, or serve — wraps it.
	ErrInvalidPolicy = policy.ErrInvalid
	// ErrCanceled reports a run cut short by context cancellation or a
	// deadline. The context's own cause is joined into the returned error,
	// so errors.Is(err, context.Canceled) or context.DeadlineExceeded also
	// hold as appropriate, and the partial Metrics returned alongside carry
	// Truncated == true.
	ErrCanceled = gpu.ErrCanceled
)
